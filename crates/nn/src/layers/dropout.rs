//! Inverted dropout — the mechanism behind Monte-Carlo-dropout Bayesian
//! inference.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use super::{Layer, Phase};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Inverted dropout with rate `p`.
///
/// - [`Phase::Train`]: each element is zeroed with probability `p` and the
///   survivors are scaled by `1 / (1 - p)`, so the expected activation is
///   unchanged. The mask is cached for [`Layer::backward`].
/// - [`Phase::Eval`]: identity (the inverted convention needs no test-time
///   scaling).
/// - [`Phase::Stochastic`]: same sampling as training — this is the
///   Monte-Carlo-dropout mode of Gal & Ghahramani (2016) that the paper
///   uses to turn MSDnet into a Bayesian network. The paper uses
///   `p = 0.5` on all relevant layers.
///
/// # Example
///
/// ```
/// use el_nn::{layers::{Dropout, Layer}, Phase, Tensor};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let mut drop = Dropout::new(0.5);
/// let t = Tensor::full(1, 8, 8, 1.0);
/// // Eval is the identity…
/// assert_eq!(drop.forward(&t, Phase::Eval, &mut rng), t);
/// // …Stochastic zeroes roughly half and doubles the rest.
/// let y = drop.forward(&t, Phase::Stochastic, &mut rng);
/// assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f32,
    #[serde(skip)]
    cached_mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Dropout {
            rate,
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Changes the drop probability (used by ablation experiments).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn set_rate(&mut self, rate: f32) {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        self.rate = rate;
    }

    /// Writes `src` with a freshly sampled Monte-Carlo mask into `dst`
    /// without touching layer state.
    ///
    /// This is the stateless `&self` path the parallel Bayesian monitor
    /// builds on: it draws exactly the same RNG stream as a
    /// [`Phase::Stochastic`] [`Layer::forward`] (one `f32` per element;
    /// none when the rate is zero), so both routes produce identical
    /// samples from identical generator states.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` lengths differ.
    pub fn apply_mc<R: RngCore + ?Sized>(&self, src: &[f32], dst: &mut [f32], rng: &mut R) {
        assert_eq!(src.len(), dst.len(), "dropout buffer length mismatch");
        if self.rate == 0.0 {
            dst.copy_from_slice(src);
            return;
        }
        let scale = 1.0 / (1.0 - self.rate);
        let mut raw = [0u32; MC_DRAW_BATCH];
        for (d_chunk, s_chunk) in dst.chunks_mut(MC_DRAW_BATCH).zip(src.chunks(MC_DRAW_BATCH)) {
            let raw = &mut raw[..d_chunk.len()];
            rng.fill_u32(raw);
            for ((d, &s), &r) in d_chunk.iter_mut().zip(s_chunk).zip(raw.iter()) {
                // Branchless select: a 50/50 data-dependent branch would
                // mispredict half the time, and this form vectorises.
                let keep = (unit_f32(r) >= self.rate) as u32 as f32;
                *d = s * scale * keep;
            }
        }
    }

    /// Writes `src` (a contiguous `channels x h x w` activation block)
    /// with a **coordinate-keyed** Monte-Carlo mask into a region of the
    /// row-major matrix `dst` (row stride `dst_stride`, starting column
    /// `dst_col` — pass `dst_stride = h * w, dst_col = 0` for a plain
    /// contiguous tensor).
    ///
    /// Unlike [`Dropout::apply_mc`], which consumes a sequential RNG
    /// stream, each element's mask bit is a pure hash of
    /// `(sample_seed, layer, chan0 + c, origin.0 + y, origin.1 + x)`
    /// ([`keyed_row_seed`] + [`keyed_mask_word`]). The mask therefore
    /// depends only on the element's **global** coordinates, never on the
    /// shape or position of the block it is computed through — the
    /// property that makes tiled Bayesian inference bit-identical to
    /// whole-frame inference, and batched verification bit-identical to
    /// per-crop verification.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a whole number of `h x w` planes or a
    /// destination row overruns `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_mc_keyed(
        &self,
        src: &[f32],
        h: usize,
        w: usize,
        dst: &mut [f32],
        dst_stride: usize,
        dst_col: usize,
        sample_seed: u64,
        layer: u32,
        chan0: usize,
        origin: (usize, usize),
    ) {
        let hw = h * w;
        assert!(
            hw > 0 && src.len().is_multiple_of(hw),
            "src must be whole planes"
        );
        let channels = src.len() / hw;
        let scale = if self.rate == 0.0 {
            1.0
        } else {
            1.0 / (1.0 - self.rate)
        };
        let kernels = el_kernels::active();
        for c in 0..channels {
            let plane = &src[c * hw..(c + 1) * hw];
            for y in 0..h {
                let row = &mut dst[c * dst_stride + dst_col + y * w..][..w];
                let s_row = &plane[y * w..(y + 1) * w];
                if self.rate == 0.0 {
                    row.copy_from_slice(s_row);
                    continue;
                }
                let row_seed = keyed_row_seed(sample_seed, layer, chan0 + c, origin.0 + y);
                kernels.mask_scale_row(row_seed, origin.1, self.rate, scale, s_row, row);
            }
        }
    }

    /// In-place variant of [`Dropout::apply_mc_keyed`] over a
    /// `channels x h x w` region embedded in a row-major matrix (row
    /// stride `stride`, starting column `col`).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_mc_keyed_in_place(
        &self,
        xs: &mut [f32],
        channels: usize,
        h: usize,
        w: usize,
        stride: usize,
        col: usize,
        sample_seed: u64,
        layer: u32,
        chan0: usize,
        origin: (usize, usize),
    ) {
        if self.rate == 0.0 {
            return;
        }
        let scale = 1.0 / (1.0 - self.rate);
        let kernels = el_kernels::active();
        for c in 0..channels {
            for y in 0..h {
                let row = &mut xs[c * stride + col + y * w..][..w];
                let row_seed = keyed_row_seed(sample_seed, layer, chan0 + c, origin.0 + y);
                kernels.mask_scale_row_in_place(row_seed, origin.1, self.rate, scale, row);
            }
        }
    }

    /// In-place variant of [`Dropout::apply_mc`].
    pub fn apply_mc_in_place<R: RngCore + ?Sized>(&self, xs: &mut [f32], rng: &mut R) {
        if self.rate == 0.0 {
            return;
        }
        let scale = 1.0 / (1.0 - self.rate);
        let mut raw = [0u32; MC_DRAW_BATCH];
        for chunk in xs.chunks_mut(MC_DRAW_BATCH) {
            let raw = &mut raw[..chunk.len()];
            rng.fill_u32(raw);
            for (v, &r) in chunk.iter_mut().zip(raw.iter()) {
                let keep = (unit_f32(r) >= self.rate) as u32 as f32;
                *v *= scale * keep;
            }
        }
    }
}

/// Words drawn per bulk batch in the Monte-Carlo appliers (a stack
/// buffer; sized to a few keystream blocks).
const MC_DRAW_BATCH: usize = 512;

// The coordinate-keyed hash pair lives in `el_kernels` (its per-row
// evaluation is SIMD-dispatched alongside the GEMM micro-kernel; see
// `el_kernels::mask`), re-exported here so the mask contract stays
// addressable as `el_nn::layers::{keyed_row_seed, keyed_mask_word}`.
use el_kernels::unit_f32;
pub use el_kernels::{keyed_mask_word, keyed_row_seed};

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, phase: Phase, rng: &mut dyn RngCore) -> Tensor {
        if !phase.dropout_active() || self.rate == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if rng.gen::<f32>() < self.rate {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let mut out = input.clone();
        for (v, m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.cached_mask = if phase == Phase::Train {
            Some(mask)
        } else {
            None
        };
        out
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        phase: Phase,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> Tensor {
        if phase == Phase::Train && self.rate != 0.0 {
            // Training still caches the mask for backward; the allocating
            // path is fine off the inference hot loop.
            return self.forward(input, phase, rng);
        }
        let (c, h, w) = input.shape();
        let mut out = ws.take_tensor(c, h, w);
        if phase.dropout_active() && self.rate != 0.0 {
            self.apply_mc(input.as_slice(), out.as_mut_slice(), rng);
        } else {
            out.as_mut_slice().copy_from_slice(input.as_slice());
        }
        self.cached_mask = None;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.cached_mask.as_ref() {
            Some(mask) => {
                assert_eq!(mask.len(), grad_out.len(), "grad_out shape mismatch");
                let mut grad_in = grad_out.clone();
                for (g, &m) in grad_in.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
                grad_in
            }
            // rate == 0 (or an Eval pass in a frozen pipeline): identity.
            None if self.rate == 0.0 => grad_out.clone(),
            None => panic!("Dropout::backward called without a Train-phase forward"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn eval_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut d = Dropout::new(0.9);
        let t = Tensor::from_fn(2, 3, 3, |c, y, x| (c + y + x) as f32);
        assert_eq!(d.forward(&t, Phase::Eval, &mut rng), t);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut d = Dropout::new(0.5);
        let t = Tensor::full(1, 100, 100, 1.0);
        let y = d.forward(&t, Phase::Train, &mut rng);
        let mean = y.mean();
        // Inverted dropout: E[y] == 1. Loose tolerance for 10k samples.
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn stochastic_passes_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut d = Dropout::new(0.5);
        let t = Tensor::full(1, 16, 16, 1.0);
        let a = d.forward(&t, Phase::Stochastic, &mut rng);
        let b = d.forward(&t, Phase::Stochastic, &mut rng);
        assert_ne!(a, b, "two MC-dropout passes should differ");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut d = Dropout::new(0.5);
        let t = Tensor::full(1, 4, 4, 3.0);
        let y = d.forward(&t, Phase::Train, &mut rng);
        let g = d.backward(&Tensor::full(1, 4, 4, 3.0));
        // grad equals forward output because input == grad_out here.
        assert_eq!(y, g);
    }

    #[test]
    fn zero_rate_is_identity_everywhere() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut d = Dropout::new(0.0);
        let t = Tensor::full(1, 2, 2, 4.0);
        assert_eq!(d.forward(&t, Phase::Train, &mut rng), t);
        assert_eq!(d.backward(&t), t);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_rejected() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn keyed_mask_is_translation_invariant() {
        // A crop applied with its global origin must see exactly the mask
        // the full plane sees at the same coordinates.
        let d = Dropout::new(0.5);
        let (h, w) = (8, 10);
        let full: Vec<f32> = (0..2 * h * w).map(|i| i as f32 * 0.1 + 1.0).collect();
        let mut full_out = vec![0.0; full.len()];
        d.apply_mc_keyed(&full, h, w, &mut full_out, h * w, 0, 77, 3, 5, (0, 0));
        // Crop rows 2..6, cols 1..8 of both channels.
        let (ch, cw, oy, ox) = (4usize, 7usize, 2usize, 1usize);
        let mut crop = vec![0.0; 2 * ch * cw];
        for c in 0..2 {
            for y in 0..ch {
                for x in 0..cw {
                    crop[(c * ch + y) * cw + x] = full[(c * h + oy + y) * w + ox + x];
                }
            }
        }
        let mut crop_out = vec![0.0; crop.len()];
        d.apply_mc_keyed(&crop, ch, cw, &mut crop_out, ch * cw, 0, 77, 3, 5, (oy, ox));
        for c in 0..2 {
            for y in 0..ch {
                for x in 0..cw {
                    assert_eq!(
                        crop_out[(c * ch + y) * cw + x],
                        full_out[(c * h + oy + y) * w + ox + x],
                        "mask differs at c{c} y{y} x{x}"
                    );
                }
            }
        }
    }

    #[test]
    fn keyed_strided_region_matches_contiguous() {
        // Writing into a column-stacked matrix region must produce the
        // same values as the contiguous path.
        let d = Dropout::new(0.5);
        let (h, w) = (3, 5);
        let src: Vec<f32> = (0..4 * h * w).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut contiguous = vec![0.0; src.len()];
        d.apply_mc_keyed(&src, h, w, &mut contiguous, h * w, 0, 9, 0, 0, (4, 2));
        let stride = h * w + 11;
        let col = 6;
        let mut stacked = vec![f32::NAN; 4 * stride];
        d.apply_mc_keyed(&src, h, w, &mut stacked, stride, col, 9, 0, 0, (4, 2));
        for c in 0..4 {
            assert_eq!(
                &stacked[c * stride + col..c * stride + col + h * w],
                &contiguous[c * h * w..(c + 1) * h * w]
            );
        }
        // In-place strided agrees with the copying path.
        let mut in_place = vec![0.0; 4 * stride];
        for c in 0..4 {
            in_place[c * stride + col..c * stride + col + h * w]
                .copy_from_slice(&src[c * h * w..(c + 1) * h * w]);
        }
        d.apply_mc_keyed_in_place(&mut in_place, 4, h, w, stride, col, 9, 0, 0, (4, 2));
        for c in 0..4 {
            assert_eq!(
                &in_place[c * stride + col..c * stride + col + h * w],
                &contiguous[c * h * w..(c + 1) * h * w]
            );
        }
    }

    #[test]
    fn keyed_mask_preserves_expectation_and_rate_zero_identity() {
        let d = Dropout::new(0.5);
        let (h, w) = (64, 64);
        let src = vec![1.0f32; h * w];
        let mut out = vec![0.0; h * w];
        d.apply_mc_keyed(&src, h, w, &mut out, h * w, 0, 123, 1, 0, (0, 0));
        let mean = out.iter().sum::<f32>() / out.len() as f32;
        assert!((mean - 1.0).abs() < 0.06, "inverted-dropout mean {mean}");
        assert!(out.iter().all(|&v| v == 0.0 || v == 2.0));
        let id = Dropout::new(0.0);
        let mut out2 = vec![7.0; h * w];
        id.apply_mc_keyed(&src, h, w, &mut out2, h * w, 0, 123, 1, 0, (0, 0));
        assert_eq!(out2, src);
    }
}

//! Neural-network layers with forward and backward passes.
//!
//! Every layer implements [`Layer`]. The forward pass takes a [`Phase`]:
//!
//! - [`Phase::Train`]: stochastic regularisers (dropout) are active and the
//!   layer caches whatever it needs for [`Layer::backward`].
//! - [`Phase::Eval`]: deterministic inference — dropout is the identity
//!   (inverted-dropout convention).
//! - [`Phase::Stochastic`]: Monte-Carlo-dropout inference — dropout stays
//!   active, exactly as the paper's Bayesian MSDnet requires, but no
//!   gradients will be requested.

mod conv;
mod dropout;
mod relu;
mod sequential;

pub use conv::Conv2d;
pub use dropout::{keyed_mask_word, keyed_row_seed, Dropout};
pub use relu::Relu;
pub use sequential::{LayerKind, Sequential};

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// The execution phase of a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Training: stochastic layers active, activations cached for backward.
    Train,
    /// Deterministic inference: dropout disabled.
    Eval,
    /// Monte-Carlo-dropout inference: dropout active, no backward expected.
    Stochastic,
}

impl Phase {
    /// `true` if dropout masks should be sampled in this phase.
    #[inline]
    pub fn dropout_active(self) -> bool {
        matches!(self, Phase::Train | Phase::Stochastic)
    }
}

/// A mutable view of one parameter tensor and its gradient accumulator.
///
/// Returned by [`Layer::params`] and consumed by the optimizers in
/// [`crate::optim`]. The order of parameters returned by a layer is stable
/// across calls, which optimizers rely on for their per-parameter state.
#[derive(Debug)]
pub struct ParamRef<'a> {
    /// The parameter values, updated in place by the optimizer.
    pub value: &'a mut [f32],
    /// The accumulated gradient, same length as `value`.
    pub grad: &'a mut [f32],
}

/// A differentiable network layer.
///
/// The `rng` argument drives stochastic layers; deterministic layers ignore
/// it. Implementations cache forward activations when `phase` is
/// [`Phase::Train`] so that [`Layer::backward`] can run afterwards.
pub trait Layer {
    /// Runs the layer forward.
    fn forward(&mut self, input: &Tensor, phase: Phase, rng: &mut dyn RngCore) -> Tensor;

    /// Runs the layer forward, drawing the output buffer (and any internal
    /// scratch) from `ws` instead of the heap.
    ///
    /// Semantically identical to [`Layer::forward`] — same values, same
    /// RNG consumption — but a warm workspace makes repeated passes
    /// allocation-free. Callers should [`Workspace::recycle`] tensors they
    /// are done with so later layers and passes can reuse the buffers.
    fn forward_ws(
        &mut self,
        input: &Tensor,
        phase: Phase,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> Tensor {
        let _ = ws;
        self.forward(input, phase, rng)
    }

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Panics
    ///
    /// Panics if called before a [`Phase::Train`] forward pass, or if
    /// `grad_out` does not match the cached output shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {}

    /// Mutable views of all `(value, grad)` parameter pairs, in a stable
    /// order.
    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Total number of learnable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_dropout_active() {
        assert!(Phase::Train.dropout_active());
        assert!(Phase::Stochastic.dropout_active());
        assert!(!Phase::Eval.dropout_active());
    }
}

//! Dense `C x H x W` feature-map tensors.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A buffer's length did not match the requested tensor shape.
    SizeMismatch {
        /// Expected element count (`c * h * w`).
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// Two tensors that must share a shape did not.
    ShapeMismatch {
        /// Shape of the first operand.
        a: (usize, usize, usize),
        /// Shape of the second operand.
        b: (usize, usize, usize),
    },
    /// An invalid hyper-parameter (e.g. dropout rate outside `[0, 1)`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match tensor size {expected}"
                )
            }
            NnError::ShapeMismatch { a, b } => write!(
                f,
                "tensor shapes {}x{}x{} and {}x{}x{} differ",
                a.0, a.1, a.2, b.0, b.1, b.2
            ),
            NnError::InvalidParameter { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for NnError {}

/// A dense feature map with shape `(channels, height, width)` stored
/// row-major per channel.
///
/// # Example
///
/// ```
/// use el_nn::Tensor;
/// let mut t = Tensor::zeros(2, 3, 4);
/// t[(1, 2, 3)] = 5.0;
/// assert_eq!(t[(1, 2, 3)], 5.0);
/// assert_eq!(t.shape(), (2, 3, 4));
/// assert_eq!(t.len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Tensor {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(channels: usize, height: usize, width: usize, value: f32) -> Self {
        Tensor {
            channels,
            height,
            width,
            data: vec![value; channels * height * width],
        }
    }

    /// Creates a tensor by evaluating `f(c, y, x)` at every element.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(channels * height * width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    data.push(f(c, y, x));
                }
            }
        }
        Tensor {
            channels,
            height,
            width,
            data,
        }
    }

    /// Wraps an existing buffer laid out as `[c][y][x]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SizeMismatch`] if the buffer length is not
    /// `channels * height * width`.
    pub fn from_vec(
        channels: usize,
        height: usize,
        width: usize,
        data: Vec<f32>,
    ) -> Result<Self, NnError> {
        if data.len() != channels * height * width {
            return Err(NnError::SizeMismatch {
                expected: channels * height * width,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            channels,
            height,
            width,
            data,
        })
    }

    /// Number of channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(channels, height, width)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Returns the element at `(c, y, x)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> Option<f32> {
        if c < self.channels && y < self.height && x < self.width {
            Some(self.data[self.offset(c, y, x)])
        } else {
            None
        }
    }

    /// The raw buffer in `[c][y][x]` order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of one channel plane (`height * width` values).
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    #[inline]
    pub fn channel(&self, c: usize) -> &[f32] {
        assert!(
            c < self.channels,
            "channel {c} out of bounds ({})",
            self.channels
        );
        let plane = self.height * self.width;
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Mutable view of one channel plane.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    #[inline]
    pub fn channel_mut(&mut self, c: usize) -> &mut [f32] {
        assert!(
            c < self.channels,
            "channel {c} out of bounds ({})",
            self.channels
        );
        let plane = self.height * self.width;
        &mut self.data[c * plane..(c + 1) * plane]
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Tensor {
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds `other` element-wise in place.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), NnError> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                a: self.shape(),
                b: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Concatenates tensors along the channel axis.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if spatial dimensions differ, or
    /// [`NnError::InvalidParameter`] if `parts` is empty.
    pub fn concat_channels(parts: &[&Tensor]) -> Result<Tensor, NnError> {
        let first = parts.first().ok_or_else(|| NnError::InvalidParameter {
            message: "concat_channels requires at least one tensor".into(),
        })?;
        let (h, w) = (first.height, first.width);
        let mut channels = 0;
        for p in parts {
            if p.height != h || p.width != w {
                return Err(NnError::ShapeMismatch {
                    a: first.shape(),
                    b: p.shape(),
                });
            }
            channels += p.channels;
        }
        let mut data = Vec::with_capacity(channels * h * w);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor {
            channels,
            height: h,
            width: w,
            data,
        })
    }

    /// Splits the tensor back into channel groups of the given sizes
    /// (inverse of [`Tensor::concat_channels`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the sizes do not sum to the
    /// channel count.
    pub fn split_channels(&self, sizes: &[usize]) -> Result<Vec<Tensor>, NnError> {
        if sizes.iter().sum::<usize>() != self.channels {
            return Err(NnError::InvalidParameter {
                message: format!(
                    "split sizes sum to {} but tensor has {} channels",
                    sizes.iter().sum::<usize>(),
                    self.channels
                ),
            });
        }
        let plane = self.height * self.width;
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for &s in sizes {
            let data = self.data[start * plane..(start + s) * plane].to_vec();
            out.push(Tensor {
                channels: s,
                height: self.height,
                width: self.width,
                data,
            });
            start += s;
        }
        Ok(out)
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

impl Index<(usize, usize, usize)> for Tensor {
    type Output = f32;
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    fn index(&self, (c, y, x): (usize, usize, usize)) -> &f32 {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c}, {y}, {x}) out of bounds for {:?}",
            self.shape()
        );
        &self.data[(c * self.height + y) * self.width + x]
    }
}

impl IndexMut<(usize, usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (c, y, x): (usize, usize, usize)) -> &mut f32 {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c}, {y}, {x}) out of bounds for {:?}",
            self.shape()
        );
        &mut self.data[(c * self.height + y) * self.width + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        t[(1, 2, 3)] = 7.5;
        assert_eq!(t[(1, 2, 3)], 7.5);
        assert_eq!(t.get(1, 2, 3), Some(7.5));
        assert_eq!(t.get(2, 0, 0), None);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(1, 2, 2, vec![0.0; 3]).is_err());
        let t = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t[(0, 1, 1)], 4.0);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.as_slice()[0], 0.0);
        assert_eq!(t.as_slice()[1], 1.0);
        assert_eq!(t.as_slice()[2], 10.0);
        assert_eq!(t.as_slice()[4], 100.0);
    }

    #[test]
    fn channel_views() {
        let t = Tensor::from_fn(3, 2, 2, |c, _, _| c as f32);
        assert!(t.channel(1).iter().all(|&v| v == 1.0));
        let mut t = t;
        t.channel_mut(2)[0] = 9.0;
        assert_eq!(t[(2, 0, 0)], 9.0);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::full(1, 2, 2, 2.0);
        let mut b = Tensor::full(1, 2, 2, 3.0);
        b.add_assign(&a).unwrap();
        assert!(b.as_slice().iter().all(|&v| v == 5.0));
        b.scale(0.5);
        assert!(b.as_slice().iter().all(|&v| v == 2.5));
        let c = Tensor::zeros(2, 2, 2);
        assert!(b.add_assign(&c).is_err());
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.map(|v| -v).max_abs(), 2.0);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::full(2, 3, 3, 1.0);
        let b = Tensor::full(1, 3, 3, 2.0);
        let cat = Tensor::concat_channels(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), (3, 3, 3));
        assert_eq!(cat[(2, 0, 0)], 2.0);
        let parts = cat.split_channels(&[2, 1]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert!(cat.split_channels(&[1, 1]).is_err());
        let bad = Tensor::zeros(1, 2, 2);
        assert!(Tensor::concat_channels(&[&a, &bad]).is_err());
        assert!(Tensor::concat_channels(&[]).is_err());
    }

    #[test]
    fn error_display() {
        let e = NnError::ShapeMismatch {
            a: (1, 2, 3),
            b: (4, 5, 6),
        };
        assert!(e.to_string().contains("1x2x3"));
    }
}

//! Finite-difference gradient checking.
//!
//! Safety argument for a from-scratch NN substrate: every backward pass in
//! this crate is validated against numerical differentiation. The helpers
//! here are `pub` so that higher-level crates (the MSDnet in `el-seg`) can
//! gradient-check their composite models too.

use rand::RngCore;

use crate::layers::{Layer, Phase};
use crate::tensor::Tensor;

/// Result of a gradient check: maximum relative error over all checked
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Maximum relative error encountered.
    pub max_rel_error: f64,
    /// Mean relative error over all checked coordinates.
    pub mean_rel_error: f64,
    /// Number of coordinates checked.
    pub checked: usize,
}

impl GradCheck {
    /// `true` if the maximum relative error is below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error < tol
    }

    /// `true` if the *mean* relative error is below `tol`.
    ///
    /// Finite differences through deep composites occasionally cross a
    /// ReLU kink at one probed coordinate; the mean is the robust
    /// acceptance criterion there, the max for single layers.
    pub fn passes_mean(&self, tol: f64) -> bool {
        self.mean_rel_error < tol
    }
}

fn rel_error(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-7 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Checks a layer's input gradient against central finite differences.
///
/// The scalar objective is `L = sum(forward(x) * seed)` for a fixed random
/// `seed` tensor; its analytic input gradient is `backward(seed)`.
/// Stochastic layers are made repeatable by cloning `rng` for every
/// forward evaluation, so the same dropout masks are drawn each time.
///
/// `probes` coordinates of the input are perturbed (all of them if
/// `probes >= x.len()`).
pub fn check_input_gradient<L, R>(
    layer: &mut L,
    x: &Tensor,
    seed: &Tensor,
    rng: &R,
    probes: usize,
    eps: f32,
) -> GradCheck
where
    L: Layer,
    R: RngCore + Clone,
{
    // Analytic gradient.
    let mut r = rng.clone();
    let out = layer.forward(x, Phase::Train, &mut r);
    assert_eq!(out.shape(), seed.shape(), "seed must match output shape");
    let analytic = layer.backward(seed);

    let objective = |layer: &mut L, x: &Tensor| -> f64 {
        let mut r = rng.clone();
        let out = layer.forward(x, Phase::Train, &mut r);
        out.as_slice()
            .iter()
            .zip(seed.as_slice())
            .map(|(&o, &s)| o as f64 * s as f64)
            .sum()
    };

    let n = x.len();
    let step = (n / probes.max(1)).max(1);
    let mut max_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    let mut checked = 0;
    let mut xp = x.clone();
    for i in (0..n).step_by(step) {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let lp = objective(layer, &xp);
        xp.as_mut_slice()[i] = orig - eps;
        let lm = objective(layer, &xp);
        xp.as_mut_slice()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps as f64);
        let rel = rel_error(numeric, analytic.as_slice()[i] as f64);
        max_rel = max_rel.max(rel);
        sum_rel += rel;
        checked += 1;
    }
    GradCheck {
        max_rel_error: max_rel,
        mean_rel_error: if checked > 0 {
            sum_rel / checked as f64
        } else {
            0.0
        },
        checked,
    }
}

/// Checks a layer's *parameter* gradients against central finite
/// differences, using the same `sum(out * seed)` objective as
/// [`check_input_gradient`].
///
/// Probes up to `probes` coordinates of each parameter tensor.
pub fn check_param_gradients<L, R>(
    layer: &mut L,
    x: &Tensor,
    seed: &Tensor,
    rng: &R,
    probes: usize,
    eps: f32,
) -> GradCheck
where
    L: Layer,
    R: RngCore + Clone,
{
    // Analytic gradients.
    layer.zero_grad();
    let mut r = rng.clone();
    let out = layer.forward(x, Phase::Train, &mut r);
    assert_eq!(out.shape(), seed.shape(), "seed must match output shape");
    let _ = layer.backward(seed);
    let analytic: Vec<Vec<f32>> = layer.params().iter().map(|p| p.grad.to_vec()).collect();

    let objective = |layer: &mut L| -> f64 {
        let mut r = rng.clone();
        let out = layer.forward(x, Phase::Train, &mut r);
        out.as_slice()
            .iter()
            .zip(seed.as_slice())
            .map(|(&o, &s)| o as f64 * s as f64)
            .sum()
    };

    let mut max_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    let mut checked = 0;
    for (pi, grads) in analytic.iter().enumerate() {
        let n = grads.len();
        let step = (n / probes.max(1)).max(1);
        for j in (0..n).step_by(step) {
            let orig = layer.params()[pi].value[j];
            layer.params()[pi].value[j] = orig + eps;
            let lp = objective(layer);
            layer.params()[pi].value[j] = orig - eps;
            let lm = objective(layer);
            layer.params()[pi].value[j] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let rel = rel_error(numeric, grads[j] as f64);
            max_rel = max_rel.max(rel);
            sum_rel += rel;
            checked += 1;
        }
    }
    GradCheck {
        max_rel_error: max_rel,
        mean_rel_error: if checked > 0 {
            sum_rel / checked as f64
        } else {
            0.0
        },
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dropout, Relu, Sequential};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(c, h, w, |_, _, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn conv_input_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = random_tensor(2, 5, 5, 2);
        let seed = random_tensor(3, 5, 5, 3);
        let res = check_input_gradient(&mut conv, &x, &seed, &rng, 25, 1e-2);
        assert!(res.passes(2e-2), "max rel err {}", res.max_rel_error);
    }

    #[test]
    fn conv_param_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut rng);
        let x = random_tensor(2, 4, 4, 5);
        let seed = random_tensor(2, 4, 4, 6);
        let res = check_param_gradients(&mut conv, &x, &seed, &rng, 20, 1e-2);
        assert!(res.passes(2e-2), "max rel err {}", res.max_rel_error);
    }

    #[test]
    fn dilated_conv_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut conv = Conv2d::new(1, 2, 3, 2, &mut rng);
        let x = random_tensor(1, 7, 7, 8);
        let seed = random_tensor(2, 7, 7, 9);
        let res = check_input_gradient(&mut conv, &x, &seed, &rng, 30, 1e-2);
        assert!(res.passes(2e-2), "max rel err {}", res.max_rel_error);
        let res = check_param_gradients(&mut conv, &x, &seed, &rng, 20, 1e-2);
        assert!(res.passes(2e-2), "max rel err {}", res.max_rel_error);
    }

    #[test]
    fn relu_gradient_away_from_kink() {
        let rng = ChaCha8Rng::seed_from_u64(10);
        let mut relu = Relu::default();
        // Keep inputs away from 0 so finite differences don't cross the kink.
        let mut x = random_tensor(2, 4, 4, 11);
        for v in x.as_mut_slice() {
            if v.abs() < 0.2 {
                *v += 0.3_f32.copysign(*v + 0.01);
            }
        }
        let seed = random_tensor(2, 4, 4, 12);
        let res = check_input_gradient(&mut relu, &x, &seed, &rng, 32, 1e-3);
        assert!(res.passes(1e-2), "max rel err {}", res.max_rel_error);
    }

    #[test]
    fn dropout_gradient_with_frozen_mask() {
        let rng = ChaCha8Rng::seed_from_u64(13);
        let mut drop = Dropout::new(0.5);
        let x = random_tensor(1, 6, 6, 14);
        let seed = random_tensor(1, 6, 6, 15);
        let res = check_input_gradient(&mut drop, &x, &seed, &rng, 36, 1e-3);
        assert!(res.passes(1e-2), "max rel err {}", res.max_rel_error);
    }

    #[test]
    fn sequential_end_to_end_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 3, 3, 1, &mut rng));
        net.push(Relu::default());
        net.push(Dropout::new(0.3));
        net.push(Conv2d::new(3, 2, 1, 1, &mut rng));
        // Small eps keeps finite differences from crossing ReLU kinks
        // inside the composite network.
        let x = random_tensor(1, 5, 5, 17);
        let seed = random_tensor(2, 5, 5, 18);
        let res = check_input_gradient(&mut net, &x, &seed, &rng, 25, 5e-4);
        assert!(res.passes(3e-2), "max rel err {}", res.max_rel_error);
        let res = check_param_gradients(&mut net, &x, &seed, &rng, 10, 5e-4);
        assert!(res.passes(3e-2), "max rel err {}", res.max_rel_error);
    }
}

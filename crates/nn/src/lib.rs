//! From-scratch neural-network substrate for the certel stack.
//!
//! The paper's landing-zone selector is a semantic-segmentation CNN
//! (MSDnet) and its runtime monitor is the *Bayesian* version of the same
//! network obtained by Monte-Carlo dropout (Gal & Ghahramani, 2016): keep
//! dropout active at inference and run several stochastic passes. Rust's
//! ML crate ecosystem is thin, so this crate implements the required
//! substrate from scratch:
//!
//! - [`Tensor`]: a dense `C x H x W` feature map with `f32` storage.
//! - [`layers`]: 2-D convolution with arbitrary dilation (the "multi-scale
//!   dilation" of MSDnet), ReLU, inverted dropout and a sequential
//!   container — every layer implements forward *and* backward.
//! - [`loss`]: per-pixel softmax cross-entropy with optional class weights.
//! - [`optim`]: SGD with momentum and Adam.
//! - [`init`]: He/Xavier weight initialisation.
//! - [`gradcheck`]: finite-difference gradient checking used by the test
//!   suite to validate every backward pass.
//!
//! The key design point for the monitor is [`Phase`]: layers behave
//! differently in [`Phase::Train`], deterministic [`Phase::Eval`] and
//! [`Phase::Stochastic`] — the last keeps dropout live without gradient
//! bookkeeping, which is exactly Monte-Carlo-dropout Bayesian inference.
//!
//! # The fast inference engine
//!
//! Inference hot paths avoid the allocating [`Layer::forward`] route:
//!
//! - [`Workspace`] is a reusable scratch-buffer arena. Every layer offers
//!   [`Layer::forward_ws`], which takes its output buffer (and internal
//!   scratch such as the convolution's im2col matrix) from the workspace,
//!   so a warm workspace services entire forward passes with **zero heap
//!   allocations** — buffers recycle between layers and between passes.
//! - [`layers::Conv2d`] lowers the dilated convolution to an im2col
//!   matrix (one row per kernel tap, rows are contiguous `h*w` planes)
//!   followed by a register-blocked row-major micro-kernel that computes
//!   four output channels per sweep. The micro-kernel (like the
//!   keyed-mask rows and the ChaCha8 refill) dispatches through the
//!   `el_kernels` tier ladder — portable → SSE2 → AVX2 → AVX-512F on
//!   x86_64, NEON on aarch64, `EL_FORCE_KERNEL` pins a tier — and per
//!   output element the reduction runs in the same `(in, ky, kx)` order
//!   as the naive tap loop on every tier, so the optimized kernel
//!   reproduces [`layers::Conv2d::forward_reference`] exactly (asserted
//!   by property tests on each tier); the reference implementation is
//!   retained for those tests and for benchmark baselines.
//! - Stochastic layers expose stateless, `&self` application paths
//!   ([`layers::Dropout::apply_mc`], [`layers::Relu::apply`]) so
//!   Monte-Carlo-dropout samples can run concurrently over one shared
//!   network — the `el-monitor` crate builds its parallel Bayesian
//!   monitor on exactly these entry points.
//!
//! # Example
//!
//! ```
//! use el_nn::{layers::{Conv2d, Dropout, Layer, Relu}, Phase, Tensor};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let mut conv = Conv2d::new(3, 4, 3, 1, &mut rng); // 3 -> 4 channels, 3x3, dilation 1
//! let mut relu = Relu::default();
//! let mut drop = Dropout::new(0.5);
//!
//! let input = Tensor::zeros(3, 8, 8);
//! let y = conv.forward(&input, Phase::Eval, &mut rng);
//! let y = relu.forward(&y, Phase::Eval, &mut rng);
//! let y = drop.forward(&y, Phase::Eval, &mut rng);
//! assert_eq!(y.shape(), (4, 8, 8));
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod tensor;
pub mod workspace;

pub use layers::{Layer, Phase};
pub use tensor::{NnError, Tensor};
pub use workspace::Workspace;

//! The paper's severity scale (Table I) and ground-risk registry
//! (Table II), extending the hazard analysis of Belcastro et al. (2017).

use serde::{Deserialize, Serialize};

/// Severity of a hazardous outcome — the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Severity {
    /// 1 — Negligible: no effect.
    Negligible = 1,
    /// 2 — Minor: slight injury or damage to the drone.
    Minor = 2,
    /// 3 — Serious: important injury or damage to critical
    /// infrastructures, environment.
    Serious = 3,
    /// 4 — Major: single fatal injury.
    Major = 4,
    /// 5 — Catastrophic: multiple fatal injuries.
    Catastrophic = 5,
}

impl Severity {
    /// All severities in increasing order.
    pub const ALL: [Severity; 5] = [
        Severity::Negligible,
        Severity::Minor,
        Severity::Serious,
        Severity::Major,
        Severity::Catastrophic,
    ];

    /// Numeric rating (1–5), as in Table I.
    pub const fn rating(self) -> u8 {
        self as u8
    }

    /// The severity with the given rating.
    pub fn from_rating(rating: u8) -> Option<Severity> {
        Self::ALL.get(rating.checked_sub(1)? as usize).copied()
    }

    /// The Table I description.
    pub fn description(self) -> &'static str {
        match self {
            Severity::Negligible => "Negligible - No effect",
            Severity::Minor => "Minor - Slight injury or damage to the drone",
            Severity::Serious => {
                "Serious - Important injury or damage to critical infrastructures, environment"
            }
            Severity::Major => "Major - Single fatal injury",
            Severity::Catastrophic => "Catastrophic - Multiple fatal injuries",
        }
    }

    /// `true` for outcomes involving potential loss of life (4–5).
    pub fn is_fatal(self) -> bool {
        self >= Severity::Major
    }
}

/// One hazardous ground-risk outcome — a row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundRisk {
    /// Identifier (R1–R5).
    pub id: &'static str,
    /// The hazardous outcome.
    pub outcome: &'static str,
    /// Its severity.
    pub severity: Severity,
}

/// The paper's Table II: main ground risks, ordered by decreasing
/// severity.
pub const GROUND_RISKS: [GroundRisk; 5] = [
    GroundRisk {
        id: "R1",
        outcome: "UAV causes accident involving ground vehicles",
        severity: Severity::Catastrophic,
    },
    GroundRisk {
        id: "R2",
        outcome: "UAV injures people on ground",
        severity: Severity::Major,
    },
    GroundRisk {
        id: "R3",
        outcome: "Post-crash fire that threatens wildlife and environment",
        severity: Severity::Serious,
    },
    GroundRisk {
        id: "R4",
        outcome:
            "UAV collides with infrastructure (building, bridge, power lines / sub-station, etc.)",
        severity: Severity::Serious,
    },
    GroundRisk {
        id: "R5",
        outcome: "UAV crashes into parked ground vehicle",
        severity: Severity::Minor,
    },
];

/// Looks up a ground risk by id (`"R1"`–`"R5"`).
pub fn ground_risk(id: &str) -> Option<&'static GroundRisk> {
    GROUND_RISKS.iter().find(|r| r.id == id)
}

/// The hazard categories of Belcastro et al. (2017) that can trigger an
/// emergency procedure — the failure taxonomy the Figure 1 safety switch
/// routes on. Used by the `el-uavsim` failure injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HazardCategory {
    /// Temporary unavailability of an external service (e.g. GNSS blip).
    TemporaryServiceLoss,
    /// Permanent loss of the command-and-control link.
    LostCommunication,
    /// Loss of navigation capabilities with trajectory control retained.
    LostNavigation,
    /// Loss of control / critical on-board failure.
    LossOfControl,
    /// Fly-away (non-responsive divergence from the mission).
    FlyAway,
    /// Degraded propulsion still allowing navigation.
    DegradedPropulsion,
}

impl HazardCategory {
    /// All categories.
    pub const ALL: [HazardCategory; 6] = [
        HazardCategory::TemporaryServiceLoss,
        HazardCategory::LostCommunication,
        HazardCategory::LostNavigation,
        HazardCategory::LossOfControl,
        HazardCategory::FlyAway,
        HazardCategory::DegradedPropulsion,
    ];

    /// Short identifier.
    pub fn name(self) -> &'static str {
        match self {
            HazardCategory::TemporaryServiceLoss => "temporary_service_loss",
            HazardCategory::LostCommunication => "lost_communication",
            HazardCategory::LostNavigation => "lost_navigation",
            HazardCategory::LossOfControl => "loss_of_control",
            HazardCategory::FlyAway => "fly_away",
            HazardCategory::DegradedPropulsion => "degraded_propulsion",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_table_matches_paper() {
        assert_eq!(Severity::ALL.len(), 5);
        for (i, s) in Severity::ALL.iter().enumerate() {
            assert_eq!(s.rating() as usize, i + 1);
            assert_eq!(Severity::from_rating(s.rating()), Some(*s));
        }
        assert_eq!(Severity::from_rating(0), None);
        assert_eq!(Severity::from_rating(6), None);
        assert!(Severity::Catastrophic.is_fatal());
        assert!(Severity::Major.is_fatal());
        assert!(!Severity::Serious.is_fatal());
    }

    #[test]
    fn ground_risks_match_table_ii() {
        assert_eq!(GROUND_RISKS.len(), 5);
        assert_eq!(ground_risk("R1").unwrap().severity, Severity::Catastrophic);
        assert_eq!(ground_risk("R2").unwrap().severity, Severity::Major);
        assert_eq!(ground_risk("R3").unwrap().severity, Severity::Serious);
        assert_eq!(ground_risk("R4").unwrap().severity, Severity::Serious);
        assert_eq!(ground_risk("R5").unwrap().severity, Severity::Minor);
        assert_eq!(ground_risk("R9"), None);
        // The worst outcome is the busy-road accident — the design driver.
        let worst = GROUND_RISKS.iter().max_by_key(|r| r.severity).unwrap();
        assert_eq!(worst.id, "R1");
    }

    #[test]
    fn ids_unique() {
        let mut ids: Vec<_> = GROUND_RISKS.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), GROUND_RISKS.len());
    }

    #[test]
    fn hazard_categories_named_uniquely() {
        let mut names: Vec<_> = HazardCategory::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HazardCategory::ALL.len());
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Negligible < Severity::Catastrophic);
        let mut sorted = GROUND_RISKS.to_vec();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.severity));
        assert_eq!(sorted[0].id, "R1");
        assert_eq!(sorted[4].id, "R5");
    }
}

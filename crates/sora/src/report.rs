//! Plain-text rendering of the paper's tables, for the experiment
//! harness and examples.

use std::fmt::Write as _;

use crate::casestudy::SoraAssessment;
use crate::hazard::{Severity, GROUND_RISKS};
use crate::oso::{oso_profile, OSOS};
use crate::sail::Sail;

/// Renders the paper's Table I (severity scale).
pub fn severity_table() -> String {
    let mut out = String::from("Table I: Severity table\n");
    for s in Severity::ALL {
        let _ = writeln!(out, "  {}  {}", s.rating(), s.description());
    }
    out
}

/// Renders the paper's Table II (main ground risks).
pub fn ground_risk_table() -> String {
    let mut out = String::from("Table II: Main ground risks\n");
    for r in GROUND_RISKS {
        let _ = writeln!(
            out,
            "  {}  {:<75} severity {}",
            r.id,
            r.outcome,
            r.severity.rating()
        );
    }
    out
}

/// The paper's Table III — proposed Level of Integrity criteria for EL
/// (active-M1), by level.
pub const INTEGRITY_CRITERIA: [(&str, &[&str]); 3] = [
    (
        "Low",
        &[
            "The selected landing zones do not contain high risk areas (as defined in Table I).",
            "The method is effective under the conditions of the operation (specific city, flight altitude, time of the day, season, etc.).",
        ],
    ),
    (
        "Medium",
        &[
            "Landing zone selection takes into account: improbable single malfunctions or failures; meteorological conditions (e.g., wind); UAV latencies, behavior and performance; UAV behavior when activating measure; UAV performance.",
            "Selected landing zone is far enough from hazardous areas to guarantee that adverse conditions will not lead the UAV to hazardous situations.",
        ],
    ),
    ("High", &["Same as Medium."]),
];

/// The paper's Table IV — proposed Level of Assurance criteria for EL
/// (active-M1), by level.
pub const ASSURANCE_CRITERIA: [(&str, &[&str]); 3] = [
    (
        "Low",
        &["The applicant declares that the required level of integrity is achieved."],
    ),
    (
        "Medium",
        &[
            "Supporting evidence to claim the required level of integrity has been achieved (testing on public datasets, testing in context).",
            "The video data used for in-context testing are recorded and verified by applicable authority.",
            "Safety monitoring techniques are in place to ensure proper behavior of any function relying on complex computer vision or machine learning.",
        ],
    ),
    (
        "High",
        &[
            "The claimed level of integrity is validated by a competent third party.",
            "The method was extensively validated under a wide range of external conditions (lighting, weather).",
        ],
    ),
];

/// Renders the paper's Table III (EL integrity criteria).
pub fn integrity_criteria_table() -> String {
    let mut out =
        String::from("Table III: Level of Integrity Assessment Criteria for Emergency Landing\n");
    for (level, items) in INTEGRITY_CRITERIA {
        let _ = writeln!(out, "  {level}:");
        for (i, item) in items.iter().enumerate() {
            let _ = writeln!(out, "    {}) {item}", i + 1);
        }
    }
    out
}

/// Renders the paper's Table IV (EL assurance criteria).
pub fn assurance_criteria_table() -> String {
    let mut out =
        String::from("Table IV: Level of Assurance Assessment Criteria for Emergency Landing\n");
    for (level, items) in ASSURANCE_CRITERIA {
        let _ = writeln!(out, "  {level}:");
        for (i, item) in items.iter().enumerate() {
            let _ = writeln!(out, "    {}) {item}", i + 1);
        }
    }
    out
}

/// Renders the OSO robustness table (SORA Table 6) for one SAIL.
pub fn oso_table(sail: Sail) -> String {
    let mut out = format!("OSO requirements at SAIL {}\n", sail.label());
    for oso in &OSOS {
        let _ = writeln!(
            out,
            "  OSO#{:02} [{}] {}",
            oso.number,
            oso.required(sail).code(),
            oso.description
        );
    }
    let p = oso_profile(sail);
    let _ = writeln!(
        out,
        "  profile: {} optional, {} low, {} medium, {} high",
        p[0], p[1], p[2], p[3]
    );
    out
}

/// Renders a full assessment summary.
pub fn assessment_summary(name: &str, a: &SoraAssessment) -> String {
    let mut out = format!("SORA assessment: {name}\n");
    let _ = writeln!(out, "  intrinsic GRC: {}", a.intrinsic_grc);
    let _ = writeln!(out, "  initial ARC:   {}", a.initial_arc.label());
    let _ = writeln!(out, "  residual ARC:  {}", a.residual_arc.label());
    let _ = writeln!(
        out,
        "  mitigations:   M1 {:?}, M2 {:?}, M3 {:?}, EL {:?}",
        a.mitigations.m1, a.mitigations.m2, a.mitigations.m3, a.mitigations.el
    );
    let _ = writeln!(out, "  final GRC:     {}", a.final_grc);
    match a.sail {
        Some(s) => {
            let _ = writeln!(out, "  SAIL:          {} ({})", s.label(), s.level());
            let p = a.oso_profile;
            let _ = writeln!(
                out,
                "  OSO profile:   {} optional, {} low, {} medium, {} high",
                p[0], p[1], p[2], p[3]
            );
        }
        None => {
            let _ = writeln!(out, "  SAIL:          outside specific category (GRC > 7)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::medi_delivery;

    #[test]
    fn tables_render_nonempty() {
        assert!(severity_table().contains("Catastrophic"));
        assert!(ground_risk_table().contains("R1"));
        assert!(integrity_criteria_table().contains("high risk areas"));
        assert!(assurance_criteria_table().contains("Safety monitoring"));
    }

    #[test]
    fn oso_table_lists_24() {
        let t = oso_table(Sail::V);
        assert_eq!(t.matches("OSO#").count(), 24);
        assert!(t.contains("profile:"));
    }

    #[test]
    fn assessment_summary_contains_headline() {
        let a = medi_delivery().assess_without_el();
        let s = assessment_summary("MEDI DELIVERY", &a);
        assert!(s.contains("intrinsic GRC: 6"));
        assert!(s.contains("ARC-c"));
        assert!(s.contains("SAIL:          V"));
    }

    #[test]
    fn criteria_tables_have_three_levels() {
        assert_eq!(INTEGRITY_CRITERIA.len(), 3);
        assert_eq!(ASSURANCE_CRITERIA.len(), 3);
        assert_eq!(INTEGRITY_CRITERIA[0].0, "Low");
        assert_eq!(ASSURANCE_CRITERIA[2].0, "High");
    }
}

//! The Operational Safety Objectives and their required robustness per
//! SAIL (SORA v2.0 Table 6).
//!
//! The paper's point (§III-D3): at SAIL V "all the OSOs are requested and
//! most of them at a high level of integrity and assurance", which is what
//! makes un-mitigated urban operations prohibitively expensive to certify.

use serde::{Deserialize, Serialize};

use crate::sail::Sail;

/// Robustness demanded of an OSO at a given SAIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsoRobustness {
    /// Optional.
    Optional,
    /// Low robustness.
    Low,
    /// Medium robustness.
    Medium,
    /// High robustness.
    High,
}

impl OsoRobustness {
    /// Single-letter code (O/L/M/H) as printed in SORA Table 6.
    pub fn code(self) -> char {
        match self {
            OsoRobustness::Optional => 'O',
            OsoRobustness::Low => 'L',
            OsoRobustness::Medium => 'M',
            OsoRobustness::High => 'H',
        }
    }
}

/// One Operational Safety Objective: number, description, and required
/// robustness for SAIL I–VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oso {
    /// OSO number (1–24).
    pub number: u8,
    /// Short description.
    pub description: &'static str,
    /// Required robustness at SAIL I, II, III, IV, V, VI.
    pub per_sail: [OsoRobustness; 6],
}

impl Oso {
    /// Required robustness at a SAIL.
    pub fn required(&self, sail: Sail) -> OsoRobustness {
        self.per_sail[(sail.level() - 1) as usize]
    }
}

use OsoRobustness::{High as H, Low as L, Medium as M, Optional as O};

/// The 24 OSOs of SORA v2.0 Table 6 (technical-issue, deterioration,
/// human-error and adverse-conditions groups).
pub const OSOS: [Oso; 24] = [
    Oso { number: 1, description: "Ensure the operator is competent and/or proven", per_sail: [O, L, M, H, H, H] },
    Oso { number: 2, description: "UAS manufactured by competent and/or proven entity", per_sail: [O, O, L, M, H, H] },
    Oso { number: 3, description: "UAS maintained by competent and/or proven entity", per_sail: [L, L, M, M, H, H] },
    Oso { number: 4, description: "UAS developed to authority recognized design standards", per_sail: [O, O, O, L, M, H] },
    Oso { number: 5, description: "UAS is designed considering system safety and reliability", per_sail: [O, O, L, M, H, H] },
    Oso { number: 6, description: "C3 link performance is appropriate for the operation", per_sail: [O, L, L, M, H, H] },
    Oso { number: 7, description: "Inspection of the UAS (product inspection) to ensure consistency with the ConOps", per_sail: [L, L, M, M, H, H] },
    Oso { number: 8, description: "Operational procedures are defined, validated and adhered to", per_sail: [L, M, H, H, H, H] },
    Oso { number: 9, description: "Remote crew trained and current and able to control the abnormal situation", per_sail: [L, L, M, M, H, H] },
    Oso { number: 10, description: "Safe recovery from technical issue", per_sail: [L, L, M, M, H, H] },
    Oso { number: 11, description: "Procedures are in-place to handle the deterioration of external systems supporting UAS operation", per_sail: [L, M, H, H, H, H] },
    Oso { number: 12, description: "The UAS is designed to manage the deterioration of external systems supporting UAS operation", per_sail: [L, L, M, M, H, H] },
    Oso { number: 13, description: "External services supporting UAS operations are adequate to the operation", per_sail: [L, L, M, H, H, H] },
    Oso { number: 14, description: "Operational procedures are defined, validated and adhered to (human error)", per_sail: [L, M, H, H, H, H] },
    Oso { number: 15, description: "Remote crew trained and current and able to control the abnormal situation (human error)", per_sail: [L, L, M, M, H, H] },
    Oso { number: 16, description: "Multi crew coordination", per_sail: [L, L, M, M, H, H] },
    Oso { number: 17, description: "Remote crew is fit to operate", per_sail: [L, L, M, M, H, H] },
    Oso { number: 18, description: "Automatic protection of the flight envelope from human errors", per_sail: [O, O, L, M, H, H] },
    Oso { number: 19, description: "Safe recovery from human error", per_sail: [O, O, L, M, M, H] },
    Oso { number: 20, description: "A human factors evaluation has been performed and the HMI found appropriate for the mission", per_sail: [O, L, L, M, M, H] },
    Oso { number: 21, description: "Operational procedures are defined, validated and adhered to (adverse operating conditions)", per_sail: [L, M, H, H, H, H] },
    Oso { number: 22, description: "The remote crew is trained to identify critical environmental conditions and to avoid them", per_sail: [L, L, M, M, M, H] },
    Oso { number: 23, description: "Environmental conditions for safe operations defined, measurable and adhered to", per_sail: [L, L, M, M, H, H] },
    Oso { number: 24, description: "UAS designed and qualified for adverse environmental conditions", per_sail: [O, O, M, H, H, H] },
];

/// Counts OSOs per required robustness at a SAIL: `[optional, low,
/// medium, high]`.
pub fn oso_profile(sail: Sail) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for oso in &OSOS {
        let idx = match oso.required(sail) {
            OsoRobustness::Optional => 0,
            OsoRobustness::Low => 1,
            OsoRobustness::Medium => 2,
            OsoRobustness::High => 3,
        };
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_osos_numbered() {
        assert_eq!(OSOS.len(), 24);
        for (i, oso) in OSOS.iter().enumerate() {
            assert_eq!(oso.number as usize, i + 1);
        }
    }

    #[test]
    fn requirements_monotone_in_sail() {
        // More demanding SAIL never relaxes an OSO.
        for oso in &OSOS {
            for w in oso.per_sail.windows(2) {
                assert!(w[0] <= w[1], "OSO {} not monotone", oso.number);
            }
        }
    }

    #[test]
    fn sail_v_is_mostly_high() {
        // The paper: at SAIL 5, "all the OSOs are requested and most of
        // them at a high level of integrity and assurance".
        let profile = oso_profile(Sail::V);
        assert_eq!(profile[0], 0, "no optional OSO at SAIL V");
        assert!(profile[3] > 12, "most OSOs high at SAIL V, got {profile:?}");
    }

    #[test]
    fn sail_vi_all_high() {
        let profile = oso_profile(Sail::VI);
        assert_eq!(profile, [0, 0, 0, 24]);
    }

    #[test]
    fn sail_i_is_light() {
        let profile = oso_profile(Sail::I);
        assert!(profile[0] >= 8, "many optional OSOs at SAIL I: {profile:?}");
        assert_eq!(profile[2] + profile[3], 0, "nothing above low at SAIL I");
    }

    #[test]
    fn profile_sums_to_24() {
        for s in [Sail::I, Sail::II, Sail::III, Sail::IV, Sail::V, Sail::VI] {
            assert_eq!(oso_profile(s).iter().sum::<usize>(), 24);
        }
    }

    #[test]
    fn sail_iv_vs_v_burden_gap() {
        // The EL mitigation's value: dropping from SAIL V to IV sheds a
        // large number of high-robustness OSOs.
        let v = oso_profile(Sail::V);
        let iv = oso_profile(Sail::IV);
        assert!(iv[3] < v[3], "SAIL IV must require fewer high OSOs");
    }

    #[test]
    fn codes() {
        assert_eq!(OsoRobustness::Optional.code(), 'O');
        assert_eq!(OsoRobustness::High.code(), 'H');
    }
}

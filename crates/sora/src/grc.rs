//! Intrinsic Ground Risk Class determination (SORA v2.0 Table 2).

use serde::{Deserialize, Serialize};

/// Physical characteristics of the unmanned aircraft.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UavSpec {
    /// Maximum characteristic dimension (wing span / blade diameter), m.
    pub max_dimension_m: f64,
    /// Maximum take-off weight, kg.
    pub mtow_kg: f64,
    /// Operating height above ground, m.
    pub operating_height_m: f64,
}

impl UavSpec {
    /// Terminal ballistic speed from the operating height,
    /// `v = sqrt(2 g h)` (the paper's "typical ballistic vertical
    /// speed"), m/s.
    pub fn ballistic_speed_mps(&self) -> f64 {
        (2.0 * 9.81 * self.operating_height_m).sqrt()
    }

    /// Typical kinetic energy at impact, `E = m v^2 / 2`, joules.
    ///
    /// For MEDI DELIVERY (7 kg from 120 m) this is the paper's 8.23 kJ.
    pub fn kinetic_energy_j(&self) -> f64 {
        0.5 * self.mtow_kg * self.ballistic_speed_mps().powi(2)
    }

    /// The SORA Table 2 size/energy column (0–3).
    ///
    /// Columns are `1 m / < 700 J`, `3 m / < 34 kJ`, `8 m / < 1084 kJ`,
    /// `> 8 m / > 1084 kJ`; the binding constraint is the *worse* of
    /// dimension and energy.
    pub fn grc_column(&self) -> usize {
        let by_dim = if self.max_dimension_m <= 1.0 {
            0
        } else if self.max_dimension_m <= 3.0 {
            1
        } else if self.max_dimension_m <= 8.0 {
            2
        } else {
            3
        };
        let e = self.kinetic_energy_j();
        let by_energy = if e < 700.0 {
            0
        } else if e < 34_000.0 {
            1
        } else if e < 1_084_000.0 {
            2
        } else {
            3
        };
        by_dim.max(by_energy)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_dimension_m <= 0.0 {
            return Err("max dimension must be positive".into());
        }
        if self.mtow_kg <= 0.0 {
            return Err("MTOW must be positive".into());
        }
        if self.operating_height_m <= 0.0 {
            return Err("operating height must be positive".into());
        }
        Ok(())
    }
}

/// The operational ground scenario (SORA Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroundScenario {
    /// VLOS or BVLOS over a controlled ground area.
    ControlledArea,
    /// VLOS over a sparsely populated environment.
    VlosSparselyPopulated,
    /// BVLOS over a sparsely populated environment.
    BvlosSparselyPopulated,
    /// VLOS over a populated environment.
    VlosPopulated,
    /// BVLOS over a populated environment.
    BvlosPopulated,
    /// VLOS over a gathering of people.
    VlosGathering,
    /// BVLOS over a gathering of people.
    BvlosGathering,
}

/// Intrinsic GRC (SORA v2.0 Table 2), or `None` where the SORA declares
/// the operation outside the specific category (grey cells).
pub fn intrinsic_grc(scenario: GroundScenario, spec: &UavSpec) -> Option<u8> {
    let col = spec.grc_column();
    let row: [Option<u8>; 4] = match scenario {
        GroundScenario::ControlledArea => [Some(1), Some(2), Some(3), Some(4)],
        GroundScenario::VlosSparselyPopulated => [Some(2), Some(3), Some(4), Some(5)],
        GroundScenario::BvlosSparselyPopulated => [Some(3), Some(4), Some(5), Some(6)],
        GroundScenario::VlosPopulated => [Some(4), Some(5), Some(6), Some(8)],
        GroundScenario::BvlosPopulated => [Some(5), Some(6), Some(8), Some(10)],
        GroundScenario::VlosGathering => [Some(7), None, None, None],
        GroundScenario::BvlosGathering => [Some(8), None, None, None],
    };
    row[col]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medi_spec() -> UavSpec {
        UavSpec {
            max_dimension_m: 1.0,
            mtow_kg: 7.0,
            operating_height_m: 120.0,
        }
    }

    #[test]
    fn medi_delivery_ballistics_match_paper() {
        let spec = medi_spec();
        // Paper §III-A: 48.5 m/s and 8.23 kJ.
        assert!((spec.ballistic_speed_mps() - 48.5).abs() < 0.1);
        assert!((spec.kinetic_energy_j() - 8230.0).abs() < 30.0);
    }

    #[test]
    fn energy_dominates_dimension_for_medi() {
        // 1 m span alone would be column 0, but 8.23 kJ > 700 J pushes to
        // column 1 — this is why the paper's intrinsic GRC is 6, not 5.
        let spec = medi_spec();
        assert_eq!(spec.grc_column(), 1);
    }

    #[test]
    fn medi_delivery_intrinsic_grc_is_6() {
        assert_eq!(
            intrinsic_grc(GroundScenario::BvlosPopulated, &medi_spec()),
            Some(6)
        );
    }

    #[test]
    fn table2_spot_checks() {
        let tiny = UavSpec {
            max_dimension_m: 0.4,
            mtow_kg: 0.3,
            operating_height_m: 30.0,
        };
        assert_eq!(tiny.grc_column(), 0);
        assert_eq!(
            intrinsic_grc(GroundScenario::ControlledArea, &tiny),
            Some(1)
        );
        assert_eq!(intrinsic_grc(GroundScenario::VlosPopulated, &tiny), Some(4));
        assert_eq!(intrinsic_grc(GroundScenario::VlosGathering, &tiny), Some(7));

        let big = UavSpec {
            max_dimension_m: 10.0,
            mtow_kg: 150.0,
            operating_height_m: 150.0,
        };
        assert_eq!(big.grc_column(), 3);
        assert_eq!(
            intrinsic_grc(GroundScenario::BvlosPopulated, &big),
            Some(10)
        );
        assert_eq!(intrinsic_grc(GroundScenario::VlosGathering, &big), None);
    }

    #[test]
    fn grc_monotone_in_scenario_risk() {
        let spec = medi_spec();
        let order = [
            GroundScenario::ControlledArea,
            GroundScenario::VlosSparselyPopulated,
            GroundScenario::BvlosSparselyPopulated,
            GroundScenario::VlosPopulated,
            GroundScenario::BvlosPopulated,
        ];
        let mut prev = 0;
        for s in order {
            let g = intrinsic_grc(s, &spec).unwrap();
            assert!(g > prev, "{s:?}");
            prev = g;
        }
    }

    #[test]
    fn grc_monotone_in_column() {
        for scenario in [
            GroundScenario::ControlledArea,
            GroundScenario::VlosPopulated,
            GroundScenario::BvlosPopulated,
        ] {
            let mut prev = 0;
            for dim in [0.8, 2.5, 6.0, 12.0] {
                let spec = UavSpec {
                    max_dimension_m: dim,
                    mtow_kg: 0.1, // keep energy negligible
                    operating_height_m: 1.0,
                };
                let g = intrinsic_grc(scenario, &spec).unwrap();
                assert!(g >= prev);
                prev = g;
            }
        }
    }

    #[test]
    fn validation() {
        assert!(medi_spec().validate().is_ok());
        let mut bad = medi_spec();
        bad.mtow_kg = 0.0;
        assert!(bad.validate().is_err());
    }
}

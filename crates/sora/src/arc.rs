//! Initial Air Risk Class determination (SORA v2.0 §2.4).

use serde::{Deserialize, Serialize};

/// The Air Risk Class, from lowest (`A`) to highest (`D`) collision risk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Arc {
    /// ARC-a: atypical or segregated airspace.
    A,
    /// ARC-b.
    B,
    /// ARC-c.
    C,
    /// ARC-d.
    D,
}

impl Arc {
    /// The SORA label (e.g. `"ARC-c"`).
    pub fn label(self) -> &'static str {
        match self {
            Arc::A => "ARC-a",
            Arc::B => "ARC-b",
            Arc::C => "ARC-c",
            Arc::D => "ARC-d",
        }
    }
}

/// Airspace characteristics driving the initial ARC (a simplified encoding
/// of the SORA v2.0 Figure 4 decision tree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirRisk {
    /// Operation in atypical/segregated airspace (e.g. a reserved
    /// corridor with airspace segregation granted by the authority).
    pub atypical_segregated: bool,
    /// Maximum operating height above ground, feet.
    pub max_height_ft: f64,
    /// Within an airport/heliport environment.
    pub airport_environment: bool,
    /// Over an urban area.
    pub urban: bool,
    /// In controlled airspace.
    pub controlled_airspace: bool,
}

impl AirRisk {
    /// Initial ARC per the SORA v2.0 decision tree.
    ///
    /// The branch relevant to the paper: flight below 500 ft AGL in
    /// uncontrolled airspace over an urban area → ARC-c.
    pub fn initial_arc(&self) -> Arc {
        if self.atypical_segregated {
            return Arc::A;
        }
        if self.airport_environment {
            return Arc::D;
        }
        if self.max_height_ft > 500.0 {
            // Above 500 ft: controlled → ARC-d, otherwise ARC-c.
            return if self.controlled_airspace {
                Arc::D
            } else {
                Arc::C
            };
        }
        // Below 500 ft AGL.
        if self.controlled_airspace || self.urban {
            Arc::C
        } else {
            Arc::B
        }
    }
}

/// The paper's strategic air-risk mitigation: MEDI DELIVERY "is evolving
/// within a dedicated corridor segregated from other UAV or manned
/// aircraft airspace", so mid-air collision risk is tied to containment
/// and "the final ARC remains ARC-c" — no Detect-and-Avoid credit is
/// taken.
pub fn residual_arc(initial: Arc, dedicated_corridor_without_daa: bool) -> Arc {
    // Without an approved strategic reduction dossier or DAA system, the
    // SORA does not lower the ARC; the corridor argument only supports
    // *containment*, which is what the paper assumes.
    let _ = dedicated_corridor_without_daa;
    initial
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medi_airspace() -> AirRisk {
        AirRisk {
            atypical_segregated: false,
            max_height_ft: 394.0, // 120 m
            airport_environment: false,
            urban: true,
            controlled_airspace: false,
        }
    }

    #[test]
    fn medi_delivery_arc_is_c() {
        // Paper §III-D1: "the maximum flight level is below 500 ft in a
        // populated area, the resulting initial ARC is ARC-c".
        assert_eq!(medi_airspace().initial_arc(), Arc::C);
        // And §III-D2: the final ARC remains ARC-c.
        assert_eq!(residual_arc(Arc::C, true), Arc::C);
    }

    #[test]
    fn segregated_airspace_is_arc_a() {
        let a = AirRisk {
            atypical_segregated: true,
            ..medi_airspace()
        };
        assert_eq!(a.initial_arc(), Arc::A);
    }

    #[test]
    fn airport_environment_is_arc_d() {
        let a = AirRisk {
            airport_environment: true,
            ..medi_airspace()
        };
        assert_eq!(a.initial_arc(), Arc::D);
    }

    #[test]
    fn rural_low_is_arc_b() {
        let a = AirRisk {
            urban: false,
            ..medi_airspace()
        };
        assert_eq!(a.initial_arc(), Arc::B);
    }

    #[test]
    fn controlled_low_is_arc_c() {
        let a = AirRisk {
            controlled_airspace: true,
            urban: false,
            ..medi_airspace()
        };
        assert_eq!(a.initial_arc(), Arc::C);
    }

    #[test]
    fn high_altitude_raises_arc() {
        let a = AirRisk {
            max_height_ft: 2000.0,
            controlled_airspace: true,
            ..medi_airspace()
        };
        assert_eq!(a.initial_arc(), Arc::D);
        let b = AirRisk {
            max_height_ft: 2000.0,
            controlled_airspace: false,
            ..medi_airspace()
        };
        assert_eq!(b.initial_arc(), Arc::C);
    }

    #[test]
    fn arcs_ordered_and_labelled() {
        assert!(Arc::A < Arc::D);
        assert_eq!(Arc::C.label(), "ARC-c");
    }
}

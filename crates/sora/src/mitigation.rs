//! Ground-risk mitigations and their GRC adaptation (SORA v2.0 Table 3),
//! including the paper's proposed active-M1 emergency-landing mitigation.

use serde::{Deserialize, Serialize};

/// Robustness level of a mitigation: the combination of *integrity* (how
/// much risk reduction) and *assurance* (how much confidence in it); SORA
/// takes the lower of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Robustness {
    /// No credit claimed / criteria not met.
    None,
    /// Low robustness.
    Low,
    /// Medium robustness.
    Medium,
    /// High robustness.
    High,
}

impl Robustness {
    /// Combines an integrity level and an assurance level: SORA Annex B
    /// takes the minimum.
    pub fn combine(integrity: Robustness, assurance: Robustness) -> Robustness {
        integrity.min(assurance)
    }
}

/// The three SORA ground-risk mitigation types plus the paper's proposed
/// emergency-landing extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// M1 — strategic mitigation: keep the UAV away from people
    /// (ground-risk buffers over low-density areas).
    M1Strategic,
    /// M2 — reduction of the effects of ground impact (e.g. parachute).
    M2ImpactReduction,
    /// M3 — emergency response plan.
    M3Erp,
    /// The paper's **active-M1**: emergency landing that actively selects
    /// a safe landing zone from live data. Scored on the M1 row of
    /// Table 3 because it, too, reduces the number of people at risk.
    ActiveM1EmergencyLanding,
}

impl Mitigation {
    /// GRC adaptation for this mitigation at the given robustness
    /// (SORA v2.0 Table 3). Positive values *increase* the GRC (an absent
    /// or low-robustness M3 adds 1).
    pub fn grc_adaptation(self, robustness: Robustness) -> i8 {
        match self {
            Mitigation::M1Strategic | Mitigation::ActiveM1EmergencyLanding => match robustness {
                Robustness::None => 0,
                Robustness::Low => -1,
                Robustness::Medium => -2,
                Robustness::High => -4,
            },
            Mitigation::M2ImpactReduction => match robustness {
                Robustness::None | Robustness::Low => 0,
                Robustness::Medium => -1,
                Robustness::High => -2,
            },
            Mitigation::M3Erp => match robustness {
                Robustness::None | Robustness::Low => 1,
                Robustness::Medium => 0,
                Robustness::High => -1,
            },
        }
    }
}

/// A claimed set of mitigations with robustness levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationSet {
    /// Classical strategic mitigation robustness.
    pub m1: Robustness,
    /// Impact-effect reduction robustness.
    pub m2: Robustness,
    /// Emergency response plan robustness.
    pub m3: Robustness,
    /// The paper's active-M1 emergency landing robustness.
    pub el: Robustness,
}

impl MitigationSet {
    /// No mitigation at all (note: the absent M3 still costs +1).
    pub fn none() -> Self {
        MitigationSet {
            m1: Robustness::None,
            m2: Robustness::None,
            m3: Robustness::None,
            el: Robustness::None,
        }
    }

    /// Total GRC adaptation of the set.
    pub fn grc_adaptation(&self) -> i8 {
        Mitigation::M1Strategic.grc_adaptation(self.m1)
            + Mitigation::M2ImpactReduction.grc_adaptation(self.m2)
            + Mitigation::M3Erp.grc_adaptation(self.m3)
            + Mitigation::ActiveM1EmergencyLanding.grc_adaptation(self.el)
    }

    /// Applies the adaptation to an intrinsic GRC. The result never drops
    /// below 1 (SORA: the final GRC cannot be lower than the lowest table
    /// entry).
    pub fn final_grc(&self, intrinsic: u8) -> u8 {
        let adapted = intrinsic as i16 + self.grc_adaptation() as i16;
        adapted.clamp(1, u8::MAX as i16) as u8
    }
}

/// The paper's applicability analysis (§III-D2) of the classical
/// mitigations for a dense-urban operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UrbanApplicability {
    /// The whole route can be kept over low-density ground (needed by M1).
    pub low_density_route_exists: bool,
    /// An impact-effect reduction (parachute) is installed (M2).
    pub impact_reduction_installed: bool,
    /// An ERP can significantly reduce the number of people at risk
    /// before the crash (M3's condition for lowering the GRC; immediate
    /// road accidents defeat it).
    pub erp_reduces_people_at_risk: bool,
}

impl UrbanApplicability {
    /// The paper's MEDI DELIVERY analysis: no low-density corridor through
    /// the city, a parachute is installed but cannot address the
    /// busy-road outcome (R1), and an ERP cannot act before an immediate
    /// road accident.
    pub fn medi_delivery() -> Self {
        UrbanApplicability {
            low_density_route_exists: false,
            impact_reduction_installed: true,
            erp_reduces_people_at_risk: false,
        }
    }

    /// The claimable classical mitigations under this analysis
    /// (§III-D2):
    ///
    /// - M1 requires the low-density route — unavailable in town.
    /// - M2 reduces R2 but not the most severe outcome R1 ("a landing on
    ///   a busy road could still cause fatal accidents"), so it cannot be
    ///   considered sufficient to decrease the GRC: no credit.
    /// - M3 is designed (medium robustness achievable) but only avoids
    ///   the +1 penalty; it cannot lower the GRC.
    pub fn claimable(&self, m3_designed: bool) -> MitigationSet {
        MitigationSet {
            m1: if self.low_density_route_exists {
                Robustness::Medium
            } else {
                Robustness::None
            },
            // M2 alone cannot mitigate R1, the dominating severity —
            // the paper refuses the GRC credit.
            m2: Robustness::None,
            m3: if m3_designed && !self.erp_reduces_people_at_risk {
                Robustness::Medium // avoids the +1, no reduction
            } else if m3_designed {
                Robustness::High
            } else {
                Robustness::None
            },
            el: Robustness::None,
        }
    }
}

/// The emergency-landing mitigation claim: integrity per the paper's
/// Table III and assurance per Table IV, combined SORA-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElMitigation {
    /// Integrity level demonstrated (Table III).
    pub integrity: Robustness,
    /// Assurance level demonstrated (Table IV).
    pub assurance: Robustness,
}

impl ElMitigation {
    /// The claimable robustness: `min(integrity, assurance)`.
    pub fn robustness(&self) -> Robustness {
        Robustness::combine(self.integrity, self.assurance)
    }

    /// The paper's implementation target: Low/Medium integrity via the
    /// core function and drift buffers, Medium assurance via the runtime
    /// monitor.
    pub fn paper_target() -> Self {
        ElMitigation {
            integrity: Robustness::Medium,
            assurance: Robustness::Medium,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_m1_row() {
        use Mitigation::M1Strategic as M1;
        assert_eq!(M1.grc_adaptation(Robustness::None), 0);
        assert_eq!(M1.grc_adaptation(Robustness::Low), -1);
        assert_eq!(M1.grc_adaptation(Robustness::Medium), -2);
        assert_eq!(M1.grc_adaptation(Robustness::High), -4);
        // Active-M1 is scored on the same row.
        assert_eq!(
            Mitigation::ActiveM1EmergencyLanding.grc_adaptation(Robustness::Medium),
            -2
        );
    }

    #[test]
    fn table3_m2_m3_rows() {
        use Mitigation::{M2ImpactReduction as M2, M3Erp as M3};
        assert_eq!(M2.grc_adaptation(Robustness::Low), 0);
        assert_eq!(M2.grc_adaptation(Robustness::Medium), -1);
        assert_eq!(M2.grc_adaptation(Robustness::High), -2);
        assert_eq!(M3.grc_adaptation(Robustness::None), 1);
        assert_eq!(M3.grc_adaptation(Robustness::Low), 1);
        assert_eq!(M3.grc_adaptation(Robustness::Medium), 0);
        assert_eq!(M3.grc_adaptation(Robustness::High), -1);
    }

    #[test]
    fn medi_delivery_classical_mitigations() {
        // Paper §III-D2/3: none of M1/M2 apply; M3 medium → final GRC 6;
        // without M3 → 7.
        let urban = UrbanApplicability::medi_delivery();
        let with_m3 = urban.claimable(true);
        assert_eq!(with_m3.final_grc(6), 6);
        let without_m3 = urban.claimable(false);
        assert_eq!(without_m3.final_grc(6), 7);
    }

    #[test]
    fn el_lowers_grc_where_classical_cannot() {
        let urban = UrbanApplicability::medi_delivery();
        let mut set = urban.claimable(true);
        set.el = ElMitigation::paper_target().robustness();
        assert_eq!(set.el, Robustness::Medium);
        // 6 - 2 = 4: the paper's entire point.
        assert_eq!(set.final_grc(6), 4);
    }

    #[test]
    fn robustness_is_minimum_of_integrity_assurance() {
        let el = ElMitigation {
            integrity: Robustness::High,
            assurance: Robustness::Low,
        };
        assert_eq!(el.robustness(), Robustness::Low);
        let el = ElMitigation {
            integrity: Robustness::Low,
            assurance: Robustness::High,
        };
        assert_eq!(el.robustness(), Robustness::Low);
    }

    #[test]
    fn final_grc_clamps_at_one() {
        let set = MitigationSet {
            m1: Robustness::High,
            m2: Robustness::High,
            m3: Robustness::High,
            el: Robustness::High,
        };
        assert_eq!(set.final_grc(2), 1);
    }

    #[test]
    fn more_robust_mitigations_never_raise_grc() {
        // Monotonicity: upgrading any single mitigation never increases
        // the final GRC.
        let levels = [
            Robustness::None,
            Robustness::Low,
            Robustness::Medium,
            Robustness::High,
        ];
        for m in [
            Mitigation::M1Strategic,
            Mitigation::M2ImpactReduction,
            Mitigation::M3Erp,
            Mitigation::ActiveM1EmergencyLanding,
        ] {
            let mut prev = i8::MAX;
            for l in levels {
                let a = m.grc_adaptation(l);
                assert!(a <= prev, "{m:?} at {l:?}");
                prev = a;
            }
        }
    }
}

//! SAIL determination (SORA v2.0 Table 5).

use serde::{Deserialize, Serialize};

use crate::arc::Arc;

/// The Specific Assurance and Integrity Level, I (lowest) to VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sail {
    /// SAIL I.
    I,
    /// SAIL II.
    II,
    /// SAIL III.
    III,
    /// SAIL IV.
    IV,
    /// SAIL V.
    V,
    /// SAIL VI.
    VI,
}

impl Sail {
    /// Numeric level 1–6.
    pub fn level(self) -> u8 {
        match self {
            Sail::I => 1,
            Sail::II => 2,
            Sail::III => 3,
            Sail::IV => 4,
            Sail::V => 5,
            Sail::VI => 6,
        }
    }

    /// Roman-numeral label.
    pub fn label(self) -> &'static str {
        match self {
            Sail::I => "I",
            Sail::II => "II",
            Sail::III => "III",
            Sail::IV => "IV",
            Sail::V => "V",
            Sail::VI => "VI",
        }
    }
}

/// SAIL determination from the final GRC and the residual ARC
/// (SORA v2.0 Table 5). Returns `None` when the final GRC exceeds 7 —
/// the operation falls into the *certified* category.
pub fn sail(final_grc: u8, residual_arc: Arc) -> Option<Sail> {
    if final_grc > 7 {
        return None;
    }
    Some(match (final_grc, residual_arc) {
        (0..=2, Arc::A) => Sail::I,
        (0..=2, Arc::B) => Sail::II,
        (0..=2, Arc::C) => Sail::IV,
        (0..=2, Arc::D) => Sail::VI,
        (3, Arc::A) | (3, Arc::B) => Sail::II,
        (3, Arc::C) => Sail::IV,
        (3, Arc::D) => Sail::VI,
        (4, Arc::A) | (4, Arc::B) => Sail::III,
        (4, Arc::C) => Sail::IV,
        (4, Arc::D) => Sail::VI,
        (5, Arc::D) => Sail::VI,
        (5, _) => Sail::IV,
        (6, Arc::D) => Sail::VI,
        (6, _) => Sail::V,
        (7, _) => Sail::VI,
        _ => unreachable!("final_grc > 7 handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medi_delivery_sails_match_paper() {
        // Paper §III-D3: GRC 6 + ARC-c → SAIL 5; GRC 7 (no M3) → SAIL 6.
        assert_eq!(sail(6, Arc::C), Some(Sail::V));
        assert_eq!(sail(7, Arc::C), Some(Sail::VI));
    }

    #[test]
    fn el_benefit_sail() {
        // With the EL mitigation at medium robustness the paper's case
        // study would reach GRC 4 → SAIL IV.
        assert_eq!(sail(4, Arc::C), Some(Sail::IV));
    }

    #[test]
    fn grc_above_7_leaves_specific_category() {
        assert_eq!(sail(8, Arc::A), None);
        assert_eq!(sail(10, Arc::D), None);
    }

    #[test]
    fn table5_spot_checks() {
        assert_eq!(sail(1, Arc::A), Some(Sail::I));
        assert_eq!(sail(2, Arc::B), Some(Sail::II));
        assert_eq!(sail(3, Arc::B), Some(Sail::II));
        assert_eq!(sail(4, Arc::B), Some(Sail::III));
        assert_eq!(sail(5, Arc::A), Some(Sail::IV));
        assert_eq!(sail(6, Arc::A), Some(Sail::V));
        for arc in [Arc::A, Arc::B, Arc::C, Arc::D] {
            assert_eq!(sail(7, arc), Some(Sail::VI));
        }
        assert_eq!(sail(1, Arc::D), Some(Sail::VI));
    }

    #[test]
    fn sail_monotone_in_grc() {
        for arc in [Arc::A, Arc::B, Arc::C, Arc::D] {
            let mut prev = Sail::I;
            for grc in 1..=7 {
                let s = sail(grc, arc).unwrap();
                assert!(s >= prev, "GRC {grc} {arc:?}");
                prev = s;
            }
        }
    }

    #[test]
    fn sail_monotone_in_arc() {
        for grc in 1..=7 {
            let mut prev = Sail::I;
            for arc in [Arc::A, Arc::B, Arc::C, Arc::D] {
                let s = sail(grc, arc).unwrap();
                assert!(s >= prev, "GRC {grc} {arc:?}");
                prev = s;
            }
        }
    }

    #[test]
    fn labels_and_levels() {
        assert_eq!(Sail::V.level(), 5);
        assert_eq!(Sail::V.label(), "V");
        assert!(Sail::I < Sail::VI);
    }
}

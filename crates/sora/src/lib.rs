//! A JARUS SORA v2.0 risk-assessment engine.
//!
//! The paper's Section III applies the Specific Operations Risk Assessment
//! (SORA v2.0, JARUS 2019) to the MEDI DELIVERY urban delivery case study
//! and shows that, without an emergency-landing mitigation, the final
//! Specific Assurance and Integrity Level (SAIL) makes certification
//! prohibitively expensive. This crate implements the assessment engine:
//!
//! - [`grc`]: intrinsic Ground Risk Class from UAV dimension/energy and
//!   the operational scenario (SORA Table 2).
//! - [`arc`]: initial Air Risk Class from the airspace (SORA §2.4).
//! - [`mitigation`]: M1/M2/M3 mitigations and their GRC adaptation (SORA
//!   Table 3), the paper's applicability analysis for dense urban
//!   operations, and the proposed **active-M1 emergency-landing
//!   mitigation**.
//! - [`sail`]: SAIL determination (SORA Table 5).
//! - [`oso`]: the 24 Operational Safety Objectives and their required
//!   robustness per SAIL (SORA Table 6).
//! - [`hazard`]: the paper's severity scale (Table I) and ground-risk
//!   outcome registry (Table II).
//! - [`casestudy`]: the MEDI DELIVERY operation and its full assessment,
//!   with and without emergency landing.
//! - [`report`]: plain-text rendering of every table for the experiment
//!   harness.
//!
//! # Example
//!
//! ```
//! use el_sora::casestudy::medi_delivery;
//! use el_sora::sail::Sail;
//!
//! let assessment = medi_delivery().assess_without_el();
//! assert_eq!(assessment.intrinsic_grc, 6);   // paper §III-D1
//! assert_eq!(assessment.final_grc, 6);       // M3 medium keeps 6
//! assert_eq!(assessment.sail, Some(Sail::V)); // paper §III-D3
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arc;
pub mod casestudy;
pub mod grc;
pub mod hazard;
pub mod mitigation;
pub mod oso;
pub mod report;
pub mod sail;

pub use arc::{AirRisk, Arc};
pub use casestudy::{medi_delivery, Operation, SoraAssessment};
pub use grc::{GroundScenario, UavSpec};
pub use hazard::{GroundRisk, Severity, GROUND_RISKS};
pub use mitigation::{ElMitigation, Mitigation, MitigationSet, Robustness};
pub use oso::{OsoRobustness, OSOS};
pub use sail::Sail;

//! Scene population: vehicles, trees, pedestrians and clutter.

use el_geom::draw::{fill_circle, fill_rect};
use el_geom::{Point, Rect, SemanticClass};
use rand::Rng;

use crate::layout::Layout;
use crate::params::SceneParams;

/// Places cars on roads (moving in lanes, static near the kerb), trees and
/// clutter on vegetated areas, and humans on walkable pixels.
///
/// Mutates `layout.labels` in place.
pub fn populate(layout: &mut Layout, params: &SceneParams, rng: &mut impl Rng) {
    place_cars(layout, params, rng);
    place_trees(layout, params, rng);
    place_clutter(layout, rng);
    place_humans(layout, params, rng);
}

/// A car footprint: a small axis-aligned rectangle sized relative to the
/// road width and oriented along it.
fn car_rect(along_vertical: bool, cx: f64, cy: f64, half_width: f64) -> Rect {
    // Car ~2.0 m x 4.5 m; with default roads (half-width 6 px at 0.5 m/px)
    // this gives roughly 2x5 px. Scale with road size, clamp to >= 1 px.
    let half_w = (half_width * 0.18).max(0.8);
    let half_l = (half_width * 0.40).max(1.6);
    let (hx, hy) = if along_vertical {
        (half_w, half_l)
    } else {
        (half_l, half_w)
    };
    Rect::new(
        (cx - hx).round() as i64,
        (cy - hy).round() as i64,
        (2.0 * hx).round().max(1.0) as i64,
        (2.0 * hy).round().max(1.0) as i64,
    )
}

fn place_cars(layout: &mut Layout, params: &SceneParams, rng: &mut impl Rng) {
    let road_pixels = layout.labels.count(|&c| c == SemanticClass::Road);
    let n_cars = (params.car_density * road_pixels as f64 / 1000.0).round() as usize;
    let hw = layout.roads.half_width;
    let (w, h) = (layout.labels.width() as f64, layout.labels.height() as f64);
    let n_roads = layout.roads.count();
    if n_roads == 0 {
        return;
    }
    for _ in 0..n_cars {
        let is_static = rng.gen_bool(params.static_car_fraction);
        let class = if is_static {
            SemanticClass::StaticCar
        } else {
            SemanticClass::MovingCar
        };
        // Lane offset: moving cars drive near the lane centres, parked cars
        // hug the kerb.
        let offset_mag = if is_static {
            hw - (hw * 0.2).max(1.0)
        } else {
            hw * rng.gen_range(0.15..0.55)
        };
        let offset = if rng.gen_bool(0.5) {
            offset_mag
        } else {
            -offset_mag
        };
        let idx = rng.gen_range(0..n_roads);
        let (along_vertical, cx, cy) = if idx < layout.roads.vertical_x.len() {
            let rx = layout.roads.vertical_x[idx];
            (true, rx + offset, rng.gen_range(0.0..h))
        } else {
            let ry = layout.roads.horizontal_y[idx - layout.roads.vertical_x.len()];
            (false, rng.gen_range(0.0..w), ry + offset)
        };
        let rect = car_rect(along_vertical, cx, cy, hw);
        // Only paint over road pixels so ground truth stays consistent:
        // cars exist on the roadway, never on buildings or grass.
        let clip = layout.labels.bounds().intersect(rect);
        for p in clip.pixels() {
            if layout.labels[p] == SemanticClass::Road {
                layout.labels[p] = class;
            }
        }
    }
}

fn place_trees(layout: &mut Layout, params: &SceneParams, rng: &mut impl Rng) {
    let veg_pixels = layout.labels.count(|&c| c == SemanticClass::LowVegetation);
    let mut n_trees = (params.tree_density * veg_pixels as f64 / 1000.0).round() as usize;
    // Parks get denser canopy: one extra tree per park block.
    n_trees += layout.blocks.iter().filter(|b| b.is_park).count();
    let (w, h) = (layout.labels.width(), layout.labels.height());
    for _ in 0..n_trees {
        // Bias tree positions towards park blocks when available.
        let (cx, cy) = if !layout.blocks.is_empty() && rng.gen_bool(0.5) {
            let b = &layout.blocks[rng.gen_range(0..layout.blocks.len())];
            (
                rng.gen_range(b.rect.x..b.rect.right()),
                rng.gen_range(b.rect.y..b.rect.bottom()),
            )
        } else {
            (rng.gen_range(0..w as i64), rng.gen_range(0..h as i64))
        };
        let center = Point::new(cx, cy);
        if layout.labels.get(center) != Some(&SemanticClass::LowVegetation) {
            continue;
        }
        let radius: f64 = rng.gen_range(1.5..4.0);
        // Canopies cover only vegetated ground: paint a disk restricted to
        // LowVegetation so roads/buildings keep their labels.
        let r = radius.ceil() as i64;
        let bbox = Rect::new(center.x - r, center.y - r, 2 * r + 1, 2 * r + 1);
        let clip = layout.labels.bounds().intersect(bbox);
        for p in clip.pixels() {
            let dx = (p.x - center.x) as f64;
            let dy = (p.y - center.y) as f64;
            if dx * dx + dy * dy <= radius * radius
                && layout.labels[p] == SemanticClass::LowVegetation
            {
                layout.labels[p] = SemanticClass::Tree;
            }
        }
    }
}

fn place_clutter(layout: &mut Layout, rng: &mut impl Rng) {
    // A few small background-clutter patches (bins, street furniture,
    // bare ground) on vegetated areas.
    let (w, h) = (layout.labels.width(), layout.labels.height());
    let n = (w * h) / 4000;
    for _ in 0..n {
        let cx = rng.gen_range(0..w as i64);
        let cy = rng.gen_range(0..h as i64);
        let p = Point::new(cx, cy);
        if layout.labels.get(p) != Some(&SemanticClass::LowVegetation) {
            continue;
        }
        if rng.gen_bool(0.5) {
            fill_circle(
                &mut layout.labels,
                p,
                rng.gen_range(1.0..2.5),
                SemanticClass::Clutter,
            );
        } else {
            fill_rect(
                &mut layout.labels,
                Rect::new(cx, cy, rng.gen_range(2..5), rng.gen_range(2..5)),
                SemanticClass::Clutter,
            );
        }
    }
}

fn place_humans(layout: &mut Layout, params: &SceneParams, rng: &mut impl Rng) {
    let walkable = layout
        .labels
        .count(|&c| matches!(c, SemanticClass::LowVegetation | SemanticClass::Clutter));
    let n = (params.human_density * walkable as f64 / 1000.0).round() as usize;
    let (w, h) = (layout.labels.width(), layout.labels.height());
    let mut placed = 0;
    let mut attempts = 0;
    while placed < n && attempts < n * 20 {
        attempts += 1;
        let p = Point::new(rng.gen_range(0..w as i64), rng.gen_range(0..h as i64));
        if matches!(
            layout.labels.get(p),
            Some(&SemanticClass::LowVegetation) | Some(&SemanticClass::Clutter)
        ) {
            // A human seen from 120 m is 1–2 px.
            layout.labels[p] = SemanticClass::Humans;
            if rng.gen_bool(0.5) {
                let q = Point::new(p.x + 1, p.y);
                if matches!(
                    layout.labels.get(q),
                    Some(&SemanticClass::LowVegetation) | Some(&SemanticClass::Clutter)
                ) {
                    layout.labels[q] = SemanticClass::Humans;
                }
            }
            placed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::generate_layout;
    use el_geom::label::class_histogram;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn populated(seed: u64) -> Layout {
        let params = SceneParams::small();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layout = generate_layout(&params, &mut rng);
        populate(&mut layout, &params, &mut rng);
        layout
    }

    #[test]
    fn all_eight_classes_appear() {
        // Across a couple of seeds every class should show up.
        let mut seen = [false; SemanticClass::COUNT];
        for seed in 0..4 {
            let l = populated(seed);
            for (i, &n) in class_histogram(&l.labels).iter().enumerate() {
                if n > 0 {
                    seen[i] = true;
                }
            }
        }
        for (i, s) in seen.iter().enumerate() {
            assert!(s, "class {:?} never appeared", SemanticClass::from_index(i));
        }
    }

    #[test]
    fn cars_only_on_roadway() {
        let l = populated(1);
        // Every car pixel must be adjacent to (or on) what was road:
        // verify cars are within road distance of centre lines.
        for (p, &c) in l.labels.enumerate() {
            if c.is_busy_road() && c != SemanticClass::Road {
                let d = l.roads.distance_to_centerline(p.x as f64, p.y as f64);
                assert!(
                    d <= l.roads.half_width + 1.5,
                    "car pixel {p} off the roadway ({d} px)"
                );
            }
        }
    }

    #[test]
    fn both_car_kinds_exist() {
        let mut static_seen = 0usize;
        let mut moving_seen = 0usize;
        for seed in 0..4 {
            let l = populated(seed);
            let hist = class_histogram(&l.labels);
            static_seen += hist[SemanticClass::StaticCar.index()];
            moving_seen += hist[SemanticClass::MovingCar.index()];
        }
        assert!(static_seen > 0, "no static cars in 4 seeds");
        assert!(moving_seen > 0, "no moving cars in 4 seeds");
    }

    #[test]
    fn trees_do_not_cover_roads_or_buildings() {
        let before = {
            let params = SceneParams::small();
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            generate_layout(&params, &mut rng)
        };
        let after = populated(9);
        for (p, &c) in after.labels.enumerate() {
            if c == SemanticClass::Tree {
                assert_eq!(
                    before.labels[p],
                    SemanticClass::LowVegetation,
                    "tree at {p} painted over {:?}",
                    before.labels[p]
                );
            }
        }
    }

    #[test]
    fn humans_are_rare_and_small() {
        let l = populated(2);
        let hist = class_histogram(&l.labels);
        let humans = hist[SemanticClass::Humans.index()];
        assert!(humans > 0, "no humans placed");
        assert!(
            (humans as f64) < 0.01 * l.labels.len() as f64,
            "humans cover too much of the scene"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(populated(3).labels, populated(3).labels);
    }
}

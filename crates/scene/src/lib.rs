//! Procedural UAVid-like urban scenes for the certel stack.
//!
//! The paper trains its MSDnet segmenter on UAVid (Lyu et al., 2020): 300
//! real 4K oblique UAV images densely labelled with eight classes. Real
//! UAVid data is not redistributable here, so this crate builds the closest
//! synthetic equivalent: a procedural generator that lays out road
//! networks, city blocks, buildings, parks, vehicles and pedestrians on a
//! pixel grid, producing *perfect ground-truth label maps for free*, and a
//! renderer that turns label maps into noisy RGB images under controllable
//! [`Conditions`] (lighting, season, sensor noise).
//!
//! The crucial experimental knob is the **distribution shift**: the paper's
//! Figure 4b evaluates on an out-of-distribution sunset image from a
//! different altitude, on which the core model fails and the Bayesian
//! monitor must catch the misses. [`Conditions::sunset`] plus
//! [`SceneParams::scaled`] reproduce exactly that shift.
//!
//! # Example
//!
//! ```
//! use el_scene::{Conditions, Scene, SceneParams};
//!
//! let params = SceneParams::small();
//! let scene = Scene::generate(&params, 42);
//! let image = scene.render(&Conditions::nominal(), 7);
//! assert_eq!(image.width(), params.width);
//! // Every pixel is labelled with one of the eight UAVid classes.
//! assert_eq!(scene.labels.len(), image.len());
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod camera;
pub mod conditions;
pub mod dataset;
pub mod faults;
pub mod layout;
pub mod noise;
pub mod params;
pub mod populate;
pub mod render;
pub mod scene;

pub use camera::Camera;
pub use conditions::{Conditions, Lighting, Season};
pub use dataset::{Dataset, DatasetConfig, Sample, Split};
pub use faults::{apply_fault, SensorFault};
pub use params::SceneParams;
pub use render::Image;
pub use scene::Scene;

//! The on-board camera model: relating flight altitude to ground
//! resolution.

use serde::{Deserialize, Serialize};

/// A simple nadir-pointing pinhole camera.
///
/// Relates the UAV's operating altitude to the ground sampling distance of
/// the rendered scenes — and therefore to the pixel size of metric safety
/// buffers (parachute drift margins) in the landing-zone selector.
///
/// # Example
///
/// ```
/// use el_scene::Camera;
/// // MEDI DELIVERY: 120 m altitude, 60 degree FOV, 256 px frames.
/// let cam = Camera::new(120.0, 60.0, 256);
/// let mpp = cam.meters_per_pixel();
/// assert!((mpp - 0.54).abs() < 0.01);
/// assert!((cam.ground_footprint_m() - 138.56).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Altitude above ground level, metres.
    pub altitude_m: f64,
    /// Full horizontal field of view, degrees.
    pub fov_deg: f64,
    /// Image width in pixels.
    pub image_width_px: usize,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics unless `altitude_m > 0`, `0 < fov_deg < 180` and
    /// `image_width_px > 0`.
    pub fn new(altitude_m: f64, fov_deg: f64, image_width_px: usize) -> Self {
        assert!(altitude_m > 0.0, "altitude must be positive");
        assert!(
            fov_deg > 0.0 && fov_deg < 180.0,
            "field of view must be in (0, 180) degrees"
        );
        assert!(image_width_px > 0, "image width must be positive");
        Camera {
            altitude_m,
            fov_deg,
            image_width_px,
        }
    }

    /// Width of the ground footprint covered by the image, metres.
    pub fn ground_footprint_m(&self) -> f64 {
        2.0 * self.altitude_m * (self.fov_deg.to_radians() / 2.0).tan()
    }

    /// Ground sampling distance, metres per pixel.
    pub fn meters_per_pixel(&self) -> f64 {
        self.ground_footprint_m() / self.image_width_px as f64
    }

    /// Converts a metric ground distance to pixels at this camera's
    /// resolution.
    pub fn meters_to_pixels(&self, meters: f64) -> f64 {
        meters / self.meters_per_pixel()
    }

    /// Returns a camera at a different altitude (same sensor).
    ///
    /// # Panics
    ///
    /// Panics unless `altitude_m > 0`.
    pub fn at_altitude(&self, altitude_m: f64) -> Camera {
        Camera::new(altitude_m, self.fov_deg, self.image_width_px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_scales_with_altitude() {
        let low = Camera::new(60.0, 60.0, 256);
        let high = low.at_altitude(120.0);
        assert!((high.ground_footprint_m() / low.ground_footprint_m() - 2.0).abs() < 1e-9);
        assert!(high.meters_per_pixel() > low.meters_per_pixel());
    }

    #[test]
    fn meters_to_pixels_roundtrip() {
        let cam = Camera::new(120.0, 60.0, 256);
        let px = cam.meters_to_pixels(10.0);
        assert!((px * cam.meters_per_pixel() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ninety_degree_fov() {
        // At 90 degrees FOV, footprint = 2 * altitude.
        let cam = Camera::new(100.0, 90.0, 100);
        assert!((cam.ground_footprint_m() - 200.0).abs() < 1e-9);
        assert!((cam.meters_per_pixel() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "altitude must be positive")]
    fn zero_altitude_rejected() {
        let _ = Camera::new(0.0, 60.0, 256);
    }

    #[test]
    #[should_panic(expected = "field of view")]
    fn flat_fov_rejected() {
        let _ = Camera::new(100.0, 180.0, 256);
    }
}

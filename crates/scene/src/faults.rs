//! Camera-fault injection: localized sensor failures.
//!
//! The paper's Table III Medium-1 integrity criterion requires zone
//! selection to account for "improbable single malfunctions or failures".
//! For a vision-based EL, the canonical single failure is a *localized*
//! sensor fault — bloom/saturation from a specular reflection, a fogged
//! lens sector, dead sensor rows — that washes out a coherent image
//! region. Unlike global lighting shifts, such faults can erase a whole
//! road from the segmentation, which is precisely the fatal-direction
//! failure a runtime monitor must catch.

use el_geom::Rect;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::render::Image;

/// A localized sensor fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFault {
    /// Saturation bloom: the region is washed out to a bright, nearly
    /// uniform level (specular highlight, low sun in the optical path).
    Bloom {
        /// Saturation level in `[0, 1]` (typically close to 1).
        level: f32,
    },
    /// A fogged/condensated patch: heavy low-pass averaging towards the
    /// region mean with desaturation.
    Fog {
        /// Blend factor towards the regional mean, `[0, 1]`.
        strength: f32,
    },
    /// Dead sensor region: pixels stuck at a constant dark value.
    Dead,
}

impl SensorFault {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SensorFault::Bloom { level } => {
                if !(0.0..=1.0).contains(level) {
                    return Err("bloom level must be in [0, 1]".into());
                }
            }
            SensorFault::Fog { strength } => {
                if !(0.0..=1.0).contains(strength) {
                    return Err("fog strength must be in [0, 1]".into());
                }
            }
            SensorFault::Dead => {}
        }
        Ok(())
    }
}

/// Applies a fault to the (clipped) region of an image, in place.
///
/// Deterministic given `seed` (bloom and fog carry small residual noise so
/// the faulted region is not perfectly uniform).
///
/// # Panics
///
/// Panics if the fault parameters are invalid.
pub fn apply_fault(image: &mut Image, region: Rect, fault: SensorFault, seed: u64) {
    if let Err(e) = fault.validate() {
        panic!("invalid sensor fault: {e}");
    }
    let clip = image.bounds().intersect(region);
    if clip.is_empty() {
        return;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match fault {
        SensorFault::Bloom { level } => {
            for p in clip.pixels() {
                let px = &mut image[p];
                for ch in px.iter_mut() {
                    let n: f32 = rng.gen_range(-0.02..0.02);
                    *ch = (level + n).clamp(0.0, 1.0);
                }
            }
        }
        SensorFault::Fog { strength } => {
            // Regional mean.
            let mut mean = [0.0f32; 3];
            for p in clip.pixels() {
                for c in 0..3 {
                    mean[c] += image[p][c];
                }
            }
            let n = clip.area() as f32;
            for m in &mut mean {
                *m /= n;
            }
            let grey = (mean[0] + mean[1] + mean[2]) / 3.0;
            for p in clip.pixels() {
                let px = &mut image[p];
                for c in 0..3 {
                    let target = mean[c] * 0.4 + grey * 0.6;
                    let noise: f32 = rng.gen_range(-0.01..0.01);
                    px[c] = (px[c] * (1.0 - strength) + target * strength + noise).clamp(0.0, 1.0);
                }
            }
        }
        SensorFault::Dead => {
            for p in clip.pixels() {
                image[p] = [0.05, 0.05, 0.05];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::Conditions;
    use crate::params::SceneParams;
    use crate::scene::Scene;

    fn image() -> Image {
        Scene::generate(&SceneParams::small(), 1).render(&Conditions::nominal(), 1)
    }

    #[test]
    fn bloom_saturates_region_only() {
        let mut img = image();
        let before = img.clone();
        let region = Rect::new(10, 10, 20, 20);
        apply_fault(&mut img, region, SensorFault::Bloom { level: 0.95 }, 7);
        for (p, px) in img.enumerate() {
            if region.contains(p) {
                assert!(px.iter().all(|&v| v > 0.9), "not saturated at {p}");
            } else {
                assert_eq!(*px, before[p], "pixel outside region changed at {p}");
            }
        }
    }

    #[test]
    fn dead_region_is_dark() {
        let mut img = image();
        apply_fault(&mut img, Rect::new(0, 0, 5, 5), SensorFault::Dead, 0);
        assert_eq!(img[(2, 2)], [0.05, 0.05, 0.05]);
    }

    #[test]
    fn fog_pulls_towards_mean() {
        let mut img = image();
        let region = Rect::new(5, 5, 30, 30);
        let variance = |img: &Image| {
            let mut mean = 0.0f64;
            let mut n = 0.0;
            for p in region.pixels() {
                mean += img[p][1] as f64;
                n += 1.0;
            }
            mean /= n;
            let mut var = 0.0;
            for p in region.pixels() {
                var += (img[p][1] as f64 - mean).powi(2);
            }
            var / n
        };
        let before = variance(&img);
        apply_fault(&mut img, region, SensorFault::Fog { strength: 0.9 }, 3);
        let after = variance(&img);
        assert!(
            after < before * 0.3,
            "fog must crush contrast: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = image();
        let mut b = image();
        apply_fault(
            &mut a,
            Rect::new(3, 3, 10, 10),
            SensorFault::Bloom { level: 0.9 },
            5,
        );
        apply_fault(
            &mut b,
            Rect::new(3, 3, 10, 10),
            SensorFault::Bloom { level: 0.9 },
            5,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_bounds_region_is_noop_outside() {
        let mut img = image();
        let before = img.clone();
        apply_fault(
            &mut img,
            Rect::new(-100, -100, 10, 10),
            SensorFault::Dead,
            0,
        );
        assert_eq!(img, before);
    }

    #[test]
    #[should_panic(expected = "invalid sensor fault")]
    fn invalid_bloom_rejected() {
        let mut img = image();
        apply_fault(
            &mut img,
            Rect::new(0, 0, 2, 2),
            SensorFault::Bloom { level: 2.0 },
            0,
        );
    }
}

//! Lattice value noise for texturing rendered scenes.

use el_geom::Grid;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic hash of a lattice point to `[0, 1)`.
fn lattice_value(seed: u64, x: i64, y: i64) -> f64 {
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    h = h.wrapping_add((x as u64).wrapping_mul(0xBF58476D1CE4E5B9));
    h ^= h >> 27;
    h = h.wrapping_add((y as u64).wrapping_mul(0x94D049BB133111EB));
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8FEB86659FD93);
    h ^= h >> 32;
    (h & 0xFFFF_FFFF) as f64 / 4294967296.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Single-octave value noise at continuous coordinates, in `[0, 1)`.
pub fn value_noise(seed: u64, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = smoothstep(x - x0);
    let ty = smoothstep(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice_value(seed, xi, yi);
    let v10 = lattice_value(seed, xi + 1, yi);
    let v01 = lattice_value(seed, xi, yi + 1);
    let v11 = lattice_value(seed, xi + 1, yi + 1);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Fractal (multi-octave) value noise in roughly `[0, 1)`.
///
/// # Panics
///
/// Panics if `octaves == 0` or `base_scale <= 0`.
pub fn fractal_noise(seed: u64, x: f64, y: f64, octaves: u32, base_scale: f64) -> f64 {
    assert!(octaves > 0, "octaves must be positive");
    assert!(base_scale > 0.0, "base_scale must be positive");
    let mut total = 0.0;
    let mut amplitude = 1.0;
    let mut norm = 0.0;
    let mut scale = base_scale;
    for o in 0..octaves {
        total += amplitude * value_noise(seed.wrapping_add(o as u64), x / scale, y / scale);
        norm += amplitude;
        amplitude *= 0.5;
        scale *= 0.5;
    }
    total / norm
}

/// A full-grid fractal noise field in `[0, 1)`.
pub fn noise_grid(
    seed: u64,
    width: usize,
    height: usize,
    octaves: u32,
    base_scale: f64,
) -> Grid<f64> {
    Grid::from_fn(width, height, |x, y| {
        fractal_noise(seed, x as f64, y as f64, octaves, base_scale)
    })
}

/// A grid of i.i.d. Gaussian samples `N(0, std^2)` (Box–Muller).
pub fn gaussian_grid(seed: u64, width: usize, height: usize, std: f64) -> Grid<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Grid::from_fn(width, height, |_, _| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(value_noise(5, 1.3, 2.7), value_noise(5, 1.3, 2.7));
        assert_ne!(value_noise(5, 1.3, 2.7), value_noise(6, 1.3, 2.7));
    }

    #[test]
    fn noise_in_unit_interval() {
        for i in 0..200 {
            let v = value_noise(9, i as f64 * 0.37, i as f64 * 0.61);
            assert!((0.0..1.0).contains(&v), "{v}");
            let f = fractal_noise(9, i as f64 * 0.37, i as f64 * 0.61, 4, 16.0);
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn noise_matches_lattice_at_integers() {
        let v = value_noise(3, 4.0, 7.0);
        assert!((v - lattice_value(3, 4, 7)).abs() < 1e-12);
    }

    #[test]
    fn noise_is_continuous() {
        // Neighbouring samples differ by a bounded amount.
        let mut prev = value_noise(1, 0.0, 0.5);
        for i in 1..500 {
            let cur = value_noise(1, i as f64 * 0.01, 0.5);
            assert!((cur - prev).abs() < 0.1, "jump at {i}");
            prev = cur;
        }
    }

    #[test]
    fn gaussian_statistics() {
        let g = gaussian_grid(11, 100, 100, 2.0);
        let n = g.len() as f64;
        let mean = g.iter().sum::<f64>() / n;
        let var = g.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn noise_grid_shape() {
        let g = noise_grid(2, 32, 16, 3, 8.0);
        assert_eq!(g.width(), 32);
        assert_eq!(g.height(), 16);
    }
}

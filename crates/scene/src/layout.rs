//! Road-network and city-block layout.

use el_geom::draw::{fill_capsule, fill_rect};
use el_geom::{Grid, LabelMap, Rect, SemanticClass, Vec2};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::params::SceneParams;

/// The generated road network: axis-aligned centre lines plus width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    /// X coordinates of vertical road centre lines.
    pub vertical_x: Vec<f64>,
    /// Y coordinates of horizontal road centre lines.
    pub horizontal_y: Vec<f64>,
    /// Road half-width in pixels.
    pub half_width: f64,
}

impl RoadNetwork {
    /// Total number of roads.
    pub fn count(&self) -> usize {
        self.vertical_x.len() + self.horizontal_y.len()
    }

    /// Distance from a point to the nearest road centre line, in pixels.
    pub fn distance_to_centerline(&self, x: f64, y: f64) -> f64 {
        let dv = self
            .vertical_x
            .iter()
            .map(|&rx| (x - rx).abs())
            .fold(f64::INFINITY, f64::min);
        let dh = self
            .horizontal_y
            .iter()
            .map(|&ry| (y - ry).abs())
            .fold(f64::INFINITY, f64::min);
        dv.min(dh)
    }
}

/// One city block: the open space between roads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The usable interior (roads and margins excluded).
    pub rect: Rect,
    /// Parks stay vegetated; non-parks receive buildings.
    pub is_park: bool,
}

/// The full layout stage output.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Label map after roads and buildings are drawn (base class:
    /// [`SemanticClass::LowVegetation`]).
    pub labels: LabelMap,
    /// The road network, kept for vehicle placement.
    pub roads: RoadNetwork,
    /// City blocks, kept for vegetation/pedestrian placement.
    pub blocks: Vec<Block>,
}

/// Samples jittered road positions along one axis.
fn road_positions(extent: f64, spacing: f64, rng: &mut impl Rng) -> Vec<f64> {
    let mut xs = Vec::new();
    let mut x = rng.gen_range(0.25 * spacing..0.75 * spacing);
    while x < extent {
        xs.push(x);
        x += spacing * rng.gen_range(0.8..1.25);
    }
    xs
}

/// Generates roads, blocks and buildings.
///
/// The base map is [`SemanticClass::LowVegetation`]; roads are drawn as
/// full-extent capsules; the space between roads becomes [`Block`]s which
/// are either parks (left vegetated) or built blocks receiving
/// [`SemanticClass::Building`] rectangles separated by vegetated gaps.
pub fn generate_layout(params: &SceneParams, rng: &mut impl Rng) -> Layout {
    let (w, h) = (params.width, params.height);
    let mut labels: LabelMap = Grid::new(w, h, SemanticClass::LowVegetation);

    let roads = RoadNetwork {
        vertical_x: road_positions(w as f64, params.road_spacing, rng),
        horizontal_y: road_positions(h as f64, params.road_spacing, rng),
        half_width: params.road_half_width,
    };

    for &rx in &roads.vertical_x {
        fill_capsule(
            &mut labels,
            Vec2::new(rx, -params.road_half_width),
            Vec2::new(rx, h as f64 + params.road_half_width),
            params.road_half_width,
            SemanticClass::Road,
        );
    }
    for &ry in &roads.horizontal_y {
        fill_capsule(
            &mut labels,
            Vec2::new(-params.road_half_width, ry),
            Vec2::new(w as f64 + params.road_half_width, ry),
            params.road_half_width,
            SemanticClass::Road,
        );
    }

    // Blocks: regions between consecutive road centre lines (including the
    // image borders as virtual roads).
    let mut xs = vec![-params.road_half_width];
    xs.extend(&roads.vertical_x);
    xs.push(w as f64 + params.road_half_width);
    let mut ys = vec![-params.road_half_width];
    ys.extend(&roads.horizontal_y);
    ys.push(h as f64 + params.road_half_width);

    let inset = params.road_half_width + params.building_margin;
    let mut blocks = Vec::new();
    for wy in ys.windows(2) {
        for wx in xs.windows(2) {
            let x0 = (wx[0] + inset).ceil() as i64;
            let x1 = (wx[1] - inset).floor() as i64;
            let y0 = (wy[0] + inset).ceil() as i64;
            let y1 = (wy[1] - inset).floor() as i64;
            let rect = Rect::new(x0, y0, x1 - x0, y1 - y0);
            // Clip to the image and require a usable interior.
            let rect = rect.intersect(labels.bounds());
            if rect.w < 8 || rect.h < 8 {
                continue;
            }
            let is_park = rng.gen_bool(params.park_fraction);
            if !is_park {
                place_buildings(&mut labels, rect, rng);
            }
            blocks.push(Block { rect, is_park });
        }
    }

    Layout {
        labels,
        roads,
        blocks,
    }
}

/// Fills a block with a grid of building footprints separated by vegetated
/// gaps.
fn place_buildings(labels: &mut LabelMap, block: Rect, rng: &mut impl Rng) {
    // Choose a subdivision so buildings are roughly 10–30 px on a side.
    let cols = ((block.w as f64 / rng.gen_range(14.0..30.0)).round() as i64).max(1);
    let rows = ((block.h as f64 / rng.gen_range(14.0..30.0)).round() as i64).max(1);
    let cell_w = block.w as f64 / cols as f64;
    let cell_h = block.h as f64 / rows as f64;
    for r in 0..rows {
        for c in 0..cols {
            // Occasional empty lot.
            if rng.gen_bool(0.12) {
                continue;
            }
            let gap_x = (cell_w * rng.gen_range(0.08..0.22)).max(1.0);
            let gap_y = (cell_h * rng.gen_range(0.08..0.22)).max(1.0);
            let x0 = block.x as f64 + c as f64 * cell_w + gap_x;
            let y0 = block.y as f64 + r as f64 * cell_h + gap_y;
            let x1 = block.x as f64 + (c + 1) as f64 * cell_w - gap_x;
            let y1 = block.y as f64 + (r + 1) as f64 * cell_h - gap_y;
            let rect = Rect::new(
                x0.round() as i64,
                y0.round() as i64,
                (x1 - x0).round() as i64,
                (y1 - y0).round() as i64,
            );
            if rect.w >= 3 && rect.h >= 3 {
                fill_rect(labels, rect, SemanticClass::Building);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_geom::label::class_histogram;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layout(seed: u64) -> Layout {
        let params = SceneParams::small();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate_layout(&params, &mut rng)
    }

    #[test]
    fn produces_roads_and_buildings() {
        let l = layout(1);
        let hist = class_histogram(&l.labels);
        assert!(hist[SemanticClass::Road.index()] > 0, "no road pixels");
        assert!(hist[SemanticClass::Building.index()] > 0, "no buildings");
        assert!(
            hist[SemanticClass::LowVegetation.index()] > 0,
            "no vegetation"
        );
        assert!(l.roads.count() >= 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = layout(5);
        let b = layout(5);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.roads, b.roads);
        let c = layout(6);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn road_pixels_near_centerlines() {
        let l = layout(2);
        for (p, &c) in l.labels.enumerate() {
            if c == SemanticClass::Road {
                let d = l.roads.distance_to_centerline(p.x as f64, p.y as f64);
                assert!(
                    d <= l.roads.half_width + 1.5,
                    "road pixel {p} is {d} px from any centerline"
                );
            }
        }
    }

    #[test]
    fn buildings_stay_clear_of_roads() {
        let params = SceneParams::small();
        let l = layout(3);
        for (p, &c) in l.labels.enumerate() {
            if c == SemanticClass::Building {
                let d = l.roads.distance_to_centerline(p.x as f64, p.y as f64);
                assert!(
                    d >= params.road_half_width + 1.0,
                    "building pixel {p} too close to a road ({d} px)"
                );
            }
        }
    }

    #[test]
    fn blocks_do_not_overlap_roads() {
        let l = layout(4);
        for b in &l.blocks {
            for p in b.rect.pixels() {
                assert_ne!(l.labels[p], SemanticClass::Road, "block pixel {p} on road");
            }
        }
    }

    #[test]
    fn park_blocks_have_no_buildings() {
        // Generate until we get at least one park (seeded, so stable).
        let l = layout(7);
        for b in l.blocks.iter().filter(|b| b.is_park) {
            for p in b.rect.pixels() {
                assert_ne!(l.labels[p], SemanticClass::Building);
            }
        }
    }
}

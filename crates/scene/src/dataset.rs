//! Datasets of rendered scenes with train/val/test/OOD splits.

use el_geom::{LabelMap, SemanticClass};
use serde::{Deserialize, Serialize};

use crate::conditions::Conditions;
use crate::params::SceneParams;
use crate::render::Image;
use crate::scene::Scene;

/// Dataset split membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Training samples (nominal conditions).
    Train,
    /// Validation samples (nominal conditions, unseen seeds).
    Val,
    /// Test samples (nominal conditions, unseen seeds) — Figure 4a's
    /// in-distribution evaluation.
    Test,
    /// Out-of-distribution samples (shifted conditions and altitude) —
    /// Figure 4b's evaluation.
    Ood,
}

/// One dataset sample: a rendered image with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Rendered RGB image.
    pub image: Image,
    /// Dense ground-truth labels.
    pub labels: LabelMap,
    /// Which split the sample belongs to.
    pub split: Split,
    /// Conditions used to render it.
    pub conditions: Conditions,
    /// Generation seed of the underlying scene.
    pub scene_seed: u64,
}

/// Configuration for dataset generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Scene-generation parameters for the in-distribution splits.
    pub params: SceneParams,
    /// Number of training samples.
    pub n_train: usize,
    /// Number of validation samples.
    pub n_val: usize,
    /// Number of test samples.
    pub n_test: usize,
    /// Number of out-of-distribution samples.
    pub n_ood: usize,
    /// Base seed; all scene and render seeds derive from it.
    pub base_seed: u64,
    /// Conditions of the OOD split (default: sunset).
    pub ood_conditions: Conditions,
    /// Altitude scale of the OOD split (default 0.7: flying higher, as in
    /// the paper's Figure 4b image whose "altitude of the drone is
    /// different from UAVid").
    pub ood_scale: f64,
}

impl DatasetConfig {
    /// A small configuration for tests and quick demos.
    pub fn small(base_seed: u64) -> Self {
        DatasetConfig {
            params: SceneParams::small(),
            n_train: 4,
            n_val: 1,
            n_test: 2,
            n_ood: 2,
            base_seed,
            ood_conditions: Conditions::sunset(),
            ood_scale: 0.7,
        }
    }

    /// The benchmark-scale configuration used by the experiment harness.
    pub fn benchmark(base_seed: u64) -> Self {
        DatasetConfig {
            params: SceneParams::default_urban(),
            n_train: 12,
            n_val: 2,
            n_test: 4,
            n_ood: 4,
            base_seed,
            ood_conditions: Conditions::sunset(),
            ood_scale: 0.7,
        }
    }
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All samples, grouped contiguously by split.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Generates a dataset deterministically from its configuration.
    ///
    /// Seeds are structured so that no scene seed is shared across splits:
    /// train/val/test differ by seed, OOD differs by seed *and* by
    /// conditions *and* by altitude scale.
    pub fn generate(config: &DatasetConfig) -> Dataset {
        let mut samples = Vec::new();
        let nominal = Conditions::nominal();
        let mut idx = 0u64;
        let push = |samples: &mut Vec<Sample>,
                    split: Split,
                    params: &SceneParams,
                    conditions: &Conditions,
                    idx: &mut u64| {
            let scene_seed = config.base_seed.wrapping_add(*idx * 1009 + 1);
            let render_seed = config.base_seed.wrapping_add(*idx * 2003 + 7);
            *idx += 1;
            let scene = Scene::generate(params, scene_seed);
            samples.push(Sample {
                image: scene.render(conditions, render_seed),
                labels: scene.labels,
                split,
                conditions: conditions.clone(),
                scene_seed,
            });
        };

        for _ in 0..config.n_train {
            push(
                &mut samples,
                Split::Train,
                &config.params,
                &nominal,
                &mut idx,
            );
        }
        for _ in 0..config.n_val {
            push(&mut samples, Split::Val, &config.params, &nominal, &mut idx);
        }
        for _ in 0..config.n_test {
            push(
                &mut samples,
                Split::Test,
                &config.params,
                &nominal,
                &mut idx,
            );
        }
        let ood_params = config.params.scaled(config.ood_scale);
        for _ in 0..config.n_ood {
            push(
                &mut samples,
                Split::Ood,
                &ood_params,
                &config.ood_conditions,
                &mut idx,
            );
        }
        Dataset { samples }
    }

    /// All samples of one split.
    pub fn split(&self, split: Split) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.split == split)
    }

    /// Number of samples in one split.
    pub fn split_len(&self, split: Split) -> usize {
        self.split(split).count()
    }

    /// Aggregate per-class pixel fractions over a split — the Figure 3
    /// class-distribution statistic.
    pub fn class_fractions(&self, split: Split) -> [f64; SemanticClass::COUNT] {
        let mut counts = [0usize; SemanticClass::COUNT];
        let mut total = 0usize;
        for s in self.split(split) {
            for c in s.labels.iter() {
                counts[c.index()] += 1;
            }
            total += s.labels.len();
        }
        let mut out = [0.0; SemanticClass::COUNT];
        if total > 0 {
            for i in 0..SemanticClass::COUNT {
                out[i] = counts[i] as f64 / total as f64;
            }
        }
        out
    }

    /// Inverse-frequency class weights computed on the training split,
    /// normalised to mean 1 — used by the segmentation trainer to counter
    /// class imbalance (humans and cars are tiny classes).
    pub fn train_class_weights(&self) -> [f32; SemanticClass::COUNT] {
        let fr = self.class_fractions(Split::Train);
        let mut w = [0.0f32; SemanticClass::COUNT];
        let mut sum = 0.0f32;
        for i in 0..SemanticClass::COUNT {
            // Clamp so absent classes don't blow up the weights.
            w[i] = (1.0 / (fr[i] + 0.01)) as f32;
            sum += w[i];
        }
        let mean = sum / SemanticClass::COUNT as f32;
        for v in &mut w {
            *v /= mean;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_match_config() {
        let ds = Dataset::generate(&DatasetConfig::small(1));
        assert_eq!(ds.split_len(Split::Train), 4);
        assert_eq!(ds.split_len(Split::Val), 1);
        assert_eq!(ds.split_len(Split::Test), 2);
        assert_eq!(ds.split_len(Split::Ood), 2);
        assert_eq!(ds.samples.len(), 9);
    }

    #[test]
    fn deterministic() {
        let a = Dataset::generate(&DatasetConfig::small(2));
        let b = Dataset::generate(&DatasetConfig::small(2));
        assert_eq!(a.samples[0].image, b.samples[0].image);
        assert_eq!(a.samples[8].labels, b.samples[8].labels);
    }

    #[test]
    fn scene_seeds_unique_across_samples() {
        let ds = Dataset::generate(&DatasetConfig::small(3));
        let mut seeds: Vec<_> = ds.samples.iter().map(|s| s.scene_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), ds.samples.len());
    }

    #[test]
    fn ood_split_uses_shifted_conditions() {
        let ds = Dataset::generate(&DatasetConfig::small(4));
        for s in ds.split(Split::Ood) {
            assert!(!s.conditions.is_training_distribution());
        }
        for s in ds.split(Split::Train) {
            assert!(s.conditions.is_training_distribution());
        }
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let ds = Dataset::generate(&DatasetConfig::small(5));
        let fr = ds.class_fractions(Split::Train);
        let sum: f64 = fr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Vegetation dominates urban scenes; humans are rare.
        assert!(fr[SemanticClass::LowVegetation.index()] > fr[SemanticClass::Humans.index()]);
    }

    #[test]
    fn class_weights_upweight_rare_classes() {
        let ds = Dataset::generate(&DatasetConfig::small(6));
        let w = ds.train_class_weights();
        assert!(
            w[SemanticClass::Humans.index()] > w[SemanticClass::LowVegetation.index()],
            "rare classes should get larger weights"
        );
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!((mean - 1.0).abs() < 1e-4);
    }
}

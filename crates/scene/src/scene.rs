//! A complete generated scene.

use el_geom::label::{busy_road_mask, class_histogram};
use el_geom::{Grid, LabelMap, SemanticClass};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::conditions::Conditions;
use crate::layout::{generate_layout, RoadNetwork};
use crate::params::SceneParams;
use crate::populate::populate;
use crate::render::{render_labels, Image};

/// A generated urban scene: dense ground-truth labels plus generation
/// metadata.
///
/// # Example
///
/// ```
/// use el_scene::{Conditions, Scene, SceneParams};
/// let scene = Scene::generate(&SceneParams::small(), 1);
/// let img = scene.render(&Conditions::nominal(), 2);
/// assert_eq!(img.width(), scene.labels.width());
/// assert!(scene.busy_road_fraction() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    /// Generation parameters.
    pub params: SceneParams,
    /// The generation seed (renders may use independent seeds).
    pub seed: u64,
    /// Dense ground-truth semantic labels.
    pub labels: LabelMap,
    /// The road network used during generation.
    pub roads: RoadNetwork,
}

impl Scene {
    /// Generates a scene deterministically from `params` and `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`SceneParams::validate`].
    pub fn generate(params: &SceneParams, seed: u64) -> Scene {
        if let Err(e) = params.validate() {
            panic!("invalid scene parameters: {e}");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layout = generate_layout(params, &mut rng);
        populate(&mut layout, params, &mut rng);
        Scene {
            params: params.clone(),
            seed,
            labels: layout.labels,
            roads: layout.roads,
        }
    }

    /// Renders the scene to an RGB image under `conditions`.
    ///
    /// The render seed is independent of the generation seed so the same
    /// scene can be imaged under many conditions (the paper's Table IV
    /// High-2 validation sweep).
    pub fn render(&self, conditions: &Conditions, render_seed: u64) -> Image {
        render_labels(&self.labels, conditions, render_seed)
    }

    /// Boolean mask of the busy-road super-category
    /// (`{road, static car, moving car}`).
    pub fn busy_road(&self) -> Grid<bool> {
        busy_road_mask(&self.labels)
    }

    /// Fraction of pixels in the busy-road super-category.
    pub fn busy_road_fraction(&self) -> f64 {
        self.busy_road().fraction_set()
    }

    /// Per-class pixel counts.
    pub fn class_histogram(&self) -> [usize; SemanticClass::COUNT] {
        class_histogram(&self.labels)
    }

    /// Scene width in pixels.
    pub fn width(&self) -> usize {
        self.labels.width()
    }

    /// Scene height in pixels.
    pub fn height(&self) -> usize {
        self.labels.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = SceneParams::small();
        let a = Scene::generate(&p, 10);
        let b = Scene::generate(&p, 10);
        assert_eq!(a.labels, b.labels);
        assert_ne!(a.labels, Scene::generate(&p, 11).labels);
    }

    #[test]
    fn busy_road_fraction_is_sane() {
        let scene = Scene::generate(&SceneParams::small(), 3);
        let f = scene.busy_road_fraction();
        // Urban scenes: a meaningful but minority share of road pixels.
        assert!(f > 0.05, "too little road: {f}");
        assert!(f < 0.6, "too much road: {f}");
    }

    #[test]
    fn histogram_matches_mask() {
        let scene = Scene::generate(&SceneParams::small(), 4);
        let hist = scene.class_histogram();
        let busy: usize = SemanticClass::BUSY_ROAD
            .iter()
            .map(|c| hist[c.index()])
            .sum();
        assert_eq!(busy, scene.busy_road().count(|&b| b));
    }

    #[test]
    fn renders_under_multiple_conditions() {
        let scene = Scene::generate(&SceneParams::small(), 5);
        let a = scene.render(&Conditions::nominal(), 0);
        let b = scene.render(&Conditions::sunset(), 0);
        assert_eq!(a.width(), scene.width());
        assert_ne!(a, b, "conditions must change the rendering");
    }

    #[test]
    #[should_panic(expected = "invalid scene parameters")]
    fn invalid_params_rejected() {
        let mut p = SceneParams::small();
        p.meters_per_pixel = -1.0;
        let _ = Scene::generate(&p, 0);
    }
}

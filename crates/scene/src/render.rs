//! Rendering label maps into noisy RGB images.

use el_geom::{Grid, LabelMap, SemanticClass};

use crate::conditions::Conditions;
use crate::noise::{fractal_noise, gaussian_grid};

/// A rendered RGB image: per-pixel `[r, g, b]` in `[0, 1]`.
pub type Image = Grid<[f32; 3]>;

/// Base albedo (R, G, B) for each semantic class under neutral lighting.
pub fn base_color(class: SemanticClass) -> [f64; 3] {
    match class {
        SemanticClass::Building => [0.48, 0.38, 0.36],
        SemanticClass::Road => [0.26, 0.26, 0.29],
        SemanticClass::StaticCar => [0.62, 0.63, 0.70],
        SemanticClass::Tree => [0.10, 0.33, 0.12],
        SemanticClass::LowVegetation => [0.36, 0.54, 0.22],
        SemanticClass::Humans => [0.78, 0.58, 0.48],
        SemanticClass::MovingCar => [0.66, 0.22, 0.22],
        SemanticClass::Clutter => [0.50, 0.47, 0.43],
    }
}

/// `true` for classes whose albedo gets the seasonal vegetation tint.
fn is_vegetation(class: SemanticClass) -> bool {
    matches!(class, SemanticClass::Tree | SemanticClass::LowVegetation)
}

/// Renders a label map to an RGB image under the given conditions.
///
/// Per pixel: class albedo, modulated by fractal texture noise (so classes
/// are *not* trivially separable by colour alone), then the conditions
/// transform (contrast/brightness/colour cast), then additive Gaussian
/// sensor noise, clamped to `[0, 1]`.
///
/// Rendering is deterministic given `(labels, conditions, seed)`.
///
/// # Panics
///
/// Panics if `conditions` fail [`Conditions::validate`].
pub fn render_labels(labels: &LabelMap, conditions: &Conditions, seed: u64) -> Image {
    if let Err(e) = conditions.validate() {
        panic!("invalid rendering conditions: {e}");
    }
    let (w, h) = (labels.width(), labels.height());
    let season_cast = conditions.season_vegetation_cast();
    // Independent noise per channel; texture shared across channels plus a
    // per-channel tweak so textures are coloured.
    let sensor: [Grid<f64>; 3] = [
        gaussian_grid(seed ^ 0xA1, w, h, conditions.noise_std),
        gaussian_grid(seed ^ 0xA2, w, h, conditions.noise_std),
        gaussian_grid(seed ^ 0xA3, w, h, conditions.noise_std),
    ];

    Grid::from_fn(w, h, |x, y| {
        let class = labels[(x, y)];
        let albedo = base_color(class);
        // Texture: per-class seed so building texture differs from grass.
        let t = fractal_noise(
            seed.wrapping_add(class.index() as u64 * 7919),
            x as f64,
            y as f64,
            3,
            11.0,
        );
        let texture = 0.78 + 0.44 * t; // in [0.78, 1.22]
        let mut px = [0.0f32; 3];
        for c in 0..3 {
            let mut v = albedo[c] * texture;
            if is_vegetation(class) {
                v *= season_cast[c];
            }
            // Conditions transform around mid-grey.
            v = conditions.contrast * (v - 0.5) + 0.5 + conditions.brightness;
            v *= conditions.color_cast[c];
            v += sensor[c][(x, y)];
            px[c] = v.clamp(0.0, 1.0) as f32;
        }
        px
    })
}

/// Per-channel mean of an image — used by tests and dataset statistics.
pub fn channel_means(image: &Image) -> [f64; 3] {
    let mut sums = [0.0f64; 3];
    for px in image.iter() {
        for c in 0..3 {
            sums[c] += px[c] as f64;
        }
    }
    let n = image.len().max(1) as f64;
    [sums[0] / n, sums[1] / n, sums[2] / n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_geom::Grid;

    fn road_and_grass() -> LabelMap {
        Grid::from_fn(32, 32, |x, _| {
            if x < 16 {
                SemanticClass::Road
            } else {
                SemanticClass::LowVegetation
            }
        })
    }

    #[test]
    fn render_is_deterministic() {
        let labels = road_and_grass();
        let a = render_labels(&labels, &Conditions::nominal(), 3);
        let b = render_labels(&labels, &Conditions::nominal(), 3);
        assert_eq!(a, b);
        let c = render_labels(&labels, &Conditions::nominal(), 4);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_unit_range() {
        let labels = road_and_grass();
        for cond in [
            Conditions::nominal(),
            Conditions::sunset(),
            Conditions::night(),
        ] {
            let img = render_labels(&labels, &cond, 1);
            for px in img.iter() {
                for &v in px {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn grass_greener_than_road() {
        let labels = road_and_grass();
        let img = render_labels(&labels, &Conditions::nominal(), 2);
        // Average green of grass half vs road half.
        let mut g_grass = 0.0;
        let mut g_road = 0.0;
        for (p, px) in img.enumerate() {
            if p.x < 16 {
                g_road += px[1] as f64;
            } else {
                g_grass += px[1] as f64;
            }
        }
        assert!(g_grass > g_road * 1.3);
    }

    #[test]
    fn sunset_shifts_channels_warm() {
        let labels = road_and_grass();
        let nominal = channel_means(&render_labels(&labels, &Conditions::nominal(), 5));
        let sunset = channel_means(&render_labels(&labels, &Conditions::sunset(), 5));
        // Blue drops much more than red under the warm cast.
        let red_ratio = sunset[0] / nominal[0];
        let blue_ratio = sunset[2] / nominal[2];
        assert!(
            blue_ratio < red_ratio,
            "sunset not warm: {red_ratio} vs {blue_ratio}"
        );
    }

    #[test]
    fn night_is_darker() {
        let labels = road_and_grass();
        let nominal = channel_means(&render_labels(&labels, &Conditions::nominal(), 6));
        let night = channel_means(&render_labels(&labels, &Conditions::night(), 6));
        let lum_n: f64 = nominal.iter().sum();
        let lum_d: f64 = night.iter().sum();
        assert!(
            lum_d < 0.6 * lum_n,
            "night not dark enough: {lum_d} vs {lum_n}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid rendering conditions")]
    fn invalid_conditions_rejected() {
        let labels = road_and_grass();
        let mut cond = Conditions::nominal();
        cond.noise_std = 5.0;
        let _ = render_labels(&labels, &cond, 0);
    }
}

//! Scene-generation parameters.

use serde::{Deserialize, Serialize};

/// Parameters controlling procedural scene generation.
///
/// Distances are in pixels unless suffixed `_m`; [`meters_per_pixel`]
/// relates the two (see [`crate::Camera`] for how it derives from flight
/// altitude).
///
/// [`meters_per_pixel`]: SceneParams::meters_per_pixel
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Ground resolution, metres per pixel.
    pub meters_per_pixel: f64,
    /// Mean spacing between parallel roads, pixels.
    pub road_spacing: f64,
    /// Road half-width, pixels.
    pub road_half_width: f64,
    /// Margin between road edge and buildings, pixels.
    pub building_margin: f64,
    /// Probability that a city block is a park instead of buildings.
    pub park_fraction: f64,
    /// Cars per 1000 road pixels (split between moving and static).
    pub car_density: f64,
    /// Fraction of cars that are parked (static).
    pub static_car_fraction: f64,
    /// Trees per 1000 non-road pixels.
    pub tree_density: f64,
    /// Humans per 1000 walkable pixels.
    pub human_density: f64,
}

impl SceneParams {
    /// Default parameters: a 256x256 scene at 0.5 m/pixel (a 128 m square
    /// patch, matching the MEDI DELIVERY operating height of ~120 m).
    pub fn default_urban() -> Self {
        SceneParams {
            width: 256,
            height: 256,
            meters_per_pixel: 0.5,
            road_spacing: 80.0,
            road_half_width: 6.0,
            building_margin: 6.0,
            park_fraction: 0.25,
            car_density: 14.0,
            static_car_fraction: 0.45,
            tree_density: 4.0,
            human_density: 1.2,
        }
    }

    /// Small parameters for unit tests: 96x96.
    pub fn small() -> Self {
        SceneParams {
            width: 96,
            height: 96,
            road_spacing: 46.0,
            road_half_width: 4.0,
            building_margin: 4.0,
            ..Self::default_urban()
        }
    }

    /// Returns a copy rescaled by `factor` — the altitude distribution
    /// shift of the paper's Figure 4b OOD image.
    ///
    /// `factor < 1` simulates flying *higher*: the same image width covers
    /// more ground, so every object shrinks and `meters_per_pixel` grows.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        SceneParams {
            width: self.width,
            height: self.height,
            meters_per_pixel: self.meters_per_pixel / factor,
            road_spacing: self.road_spacing * factor,
            road_half_width: (self.road_half_width * factor).max(1.0),
            building_margin: (self.building_margin * factor).max(1.0),
            park_fraction: self.park_fraction,
            car_density: self.car_density,
            static_car_fraction: self.static_car_fraction,
            tree_density: self.tree_density,
            human_density: self.human_density,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err("scene dimensions must be positive".into());
        }
        if self.meters_per_pixel <= 0.0 {
            return Err("meters_per_pixel must be positive".into());
        }
        if self.road_spacing <= 2.0 * self.road_half_width {
            return Err("road_spacing must exceed the road width".into());
        }
        for (name, v) in [
            ("park_fraction", self.park_fraction),
            ("static_car_fraction", self.static_car_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1]"));
            }
        }
        for (name, v) in [
            ("car_density", self.car_density),
            ("tree_density", self.tree_density),
            ("human_density", self.human_density),
        ] {
            if v < 0.0 {
                return Err(format!("{name} must be non-negative"));
            }
        }
        Ok(())
    }
}

impl Default for SceneParams {
    fn default() -> Self {
        Self::default_urban()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(SceneParams::default_urban().validate().is_ok());
        assert!(SceneParams::small().validate().is_ok());
    }

    #[test]
    fn scaled_shrinks_objects_and_grows_footprint() {
        let p = SceneParams::default_urban();
        let hi = p.scaled(0.5); // fly twice as high
        assert!(hi.road_half_width < p.road_half_width);
        assert!(hi.meters_per_pixel > p.meters_per_pixel);
        assert_eq!(hi.width, p.width);
        assert!(hi.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = SceneParams::default_urban();
        p.width = 0;
        assert!(p.validate().is_err());
        let mut p = SceneParams::default_urban();
        p.road_spacing = 5.0;
        assert!(p.validate().is_err());
        let mut p = SceneParams::default_urban();
        p.park_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = SceneParams::default_urban();
        p.car_density = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        let _ = SceneParams::default_urban().scaled(0.0);
    }
}

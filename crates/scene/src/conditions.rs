//! Environmental conditions for rendering: lighting, season, sensor noise.
//!
//! The paper's assurance criteria (Table IV, High-2) require validating the
//! EL system "under a wide range of external conditions (lighting,
//! weather)". Conditions are the renderer's knobs for that validation — and
//! [`Conditions::sunset`] reproduces the Figure 4b out-of-distribution
//! evaluation (an online sunset image at a different altitude on which the
//! core model fails).

use serde::{Deserialize, Serialize};

/// Global lighting regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Lighting {
    /// Clear mid-day lighting — the training distribution.
    #[default]
    Nominal,
    /// Low, warm sun: strong orange cast and compressed contrast
    /// (the paper's OOD test condition).
    Sunset,
    /// Flat grey lighting, mildly reduced contrast.
    Overcast,
    /// Very low light with heavy sensor noise.
    Night,
}

/// Season, shifting vegetation appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Season {
    /// Green vegetation — the training distribution.
    #[default]
    Summer,
    /// Browner vegetation.
    Autumn,
    /// Desaturated, greyish vegetation.
    Winter,
}

/// Full rendering conditions.
///
/// The renderer computes, per pixel and channel:
/// `out = clamp(cast_c * (contrast * (base - 0.5) + 0.5 + brightness) + noise)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conditions {
    /// Lighting regime (drives the defaults of the numeric fields).
    pub lighting: Lighting,
    /// Season for vegetation tinting.
    pub season: Season,
    /// Additive brightness shift in `[-1, 1]`.
    pub brightness: f64,
    /// Contrast multiplier around mid-grey (1 = unchanged).
    pub contrast: f64,
    /// Per-channel (R, G, B) colour cast multipliers.
    pub color_cast: [f64; 3],
    /// Standard deviation of additive Gaussian sensor noise.
    pub noise_std: f64,
}

impl Conditions {
    /// Clear mid-day conditions — the training distribution.
    pub fn nominal() -> Self {
        Conditions {
            lighting: Lighting::Nominal,
            season: Season::Summer,
            brightness: 0.0,
            contrast: 1.0,
            color_cast: [1.0, 1.0, 1.0],
            noise_std: 0.02,
        }
    }

    /// The paper's Figure 4b out-of-distribution condition: sunset.
    ///
    /// Warm cast, compressed contrast, slightly darker, noisier. The
    /// severity is calibrated so a model trained on nominal conditions
    /// reproduces the paper's failure *shape*: a large fraction of road
    /// pixels is misclassified as safe classes (the dangerous direction
    /// the monitor must catch) while most genuinely safe areas are still
    /// recognised, so candidate zones keep being proposed.
    pub fn sunset() -> Self {
        Conditions {
            lighting: Lighting::Sunset,
            season: Season::Summer,
            brightness: -0.044,
            contrast: 0.75,
            color_cast: [1.14, 0.90, 0.75],
            noise_std: 0.031,
        }
    }

    /// Flat overcast lighting: a mild, *near*-distribution shift.
    pub fn overcast() -> Self {
        Conditions {
            lighting: Lighting::Overcast,
            season: Season::Summer,
            brightness: -0.03,
            contrast: 0.85,
            color_cast: [0.95, 0.97, 1.02],
            noise_std: 0.03,
        }
    }

    /// Night operation: heavily darkened and noisy — far out of
    /// distribution.
    pub fn night() -> Self {
        Conditions {
            lighting: Lighting::Night,
            season: Season::Summer,
            brightness: -0.38,
            contrast: 0.45,
            color_cast: [0.55, 0.6, 0.8],
            noise_std: 0.08,
        }
    }

    /// Returns a copy with the given season.
    pub fn with_season(mut self, season: Season) -> Self {
        self.season = season;
        self
    }

    /// Vegetation tint multipliers (R, G, B) for the season.
    pub fn season_vegetation_cast(&self) -> [f64; 3] {
        match self.season {
            Season::Summer => [1.0, 1.0, 1.0],
            Season::Autumn => [1.25, 0.85, 0.55],
            Season::Winter => [0.9, 0.8, 0.75],
        }
    }

    /// `true` for the conditions the paper treats as in-distribution
    /// (the training regime: nominal summer lighting).
    pub fn is_training_distribution(&self) -> bool {
        self.lighting == Lighting::Nominal && self.season == Season::Summer
    }

    /// Validates numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(-1.0..=1.0).contains(&self.brightness) {
            return Err("brightness must be in [-1, 1]".into());
        }
        if self.contrast <= 0.0 || self.contrast > 4.0 {
            return Err("contrast must be in (0, 4]".into());
        }
        if self.color_cast.iter().any(|&c| c <= 0.0 || c > 4.0) {
            return Err("color cast channels must be in (0, 4]".into());
        }
        if self.noise_std < 0.0 || self.noise_std > 1.0 {
            return Err("noise_std must be in [0, 1]".into());
        }
        Ok(())
    }
}

impl Default for Conditions {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            Conditions::nominal(),
            Conditions::sunset(),
            Conditions::overcast(),
            Conditions::night(),
        ] {
            assert!(c.validate().is_ok(), "{:?}", c.lighting);
        }
    }

    #[test]
    fn only_nominal_summer_is_training_distribution() {
        assert!(Conditions::nominal().is_training_distribution());
        assert!(!Conditions::sunset().is_training_distribution());
        assert!(!Conditions::nominal()
            .with_season(Season::Winter)
            .is_training_distribution());
    }

    #[test]
    fn sunset_is_warm_and_low_contrast() {
        let s = Conditions::sunset();
        assert!(s.color_cast[0] > s.color_cast[2], "sunset must be warm");
        assert!(s.contrast < Conditions::nominal().contrast);
        assert!(s.noise_std > Conditions::nominal().noise_std);
    }

    #[test]
    fn season_casts_differ() {
        assert_ne!(
            Conditions::nominal()
                .with_season(Season::Autumn)
                .season_vegetation_cast(),
            Conditions::nominal()
                .with_season(Season::Summer)
                .season_vegetation_cast()
        );
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = Conditions::nominal();
        c.brightness = 2.0;
        assert!(c.validate().is_err());
        let mut c = Conditions::nominal();
        c.contrast = 0.0;
        assert!(c.validate().is_err());
        let mut c = Conditions::nominal();
        c.color_cast = [1.0, -0.5, 1.0];
        assert!(c.validate().is_err());
        let mut c = Conditions::nominal();
        c.noise_std = 1.5;
        assert!(c.validate().is_err());
    }
}

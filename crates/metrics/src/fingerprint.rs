//! Streaming FNV-1a fingerprints over canonical bytes.
//!
//! The stack's determinism instrument, used by the service's per-stream
//! decision logs and the fleet risk map's snapshots alike. Same
//! discipline as the scenario subsystem's event-log fingerprints: every
//! value appends a fixed, architecture-independent byte sequence —
//! integers and float bit patterns little-endian, sequences
//! length-prefixed, enums as declaration-order tag bytes. Hashing bytes
//! instead of formatted text keeps the fingerprint portable across
//! platforms (float *formatting* differs; float *bits* do not).

/// A streaming 64-bit FNV-1a hasher over canonical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(0xCBF2_9CE4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Absorbs an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` as its IEEE bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorbs a one-byte enum tag.
    pub fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The current hash as a fixed-width hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fingerprint::new();
        a.u64(1);
        a.f64(2.5);
        let mut b = Fingerprint::new();
        b.u64(1);
        b.f64(2.5);
        assert_eq!(a.value(), b.value());
        assert_eq!(a.hex(), b.hex());
        let mut c = Fingerprint::new();
        c.f64(2.5);
        c.u64(1);
        assert_ne!(a.value(), c.value());
    }

    #[test]
    fn nan_bit_patterns_are_distinguished() {
        let mut a = Fingerprint::new();
        a.f64(f64::NAN);
        let mut b = Fingerprint::new();
        b.f64(-f64::NAN);
        assert_ne!(a.value(), b.value(), "distinct bit patterns hash apart");
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut f = Fingerprint::new();
        f.tag(0);
        assert_eq!(f.hex().len(), 16);
    }
}

//! Zero-allocation observability for the emergency-landing stack.
//!
//! The paper's runtime monitor lives on a hard real-time budget, so the
//! instrumentation that watches it must never perturb it: every recording
//! primitive here is a fixed set of preallocated atomics — no heap
//! allocation, no locks, no syscalls on the hot path. Recording is gated
//! by a single process-wide flag ([`set_enabled`], default **off**) read
//! with one relaxed load, and a disabled [`Stopwatch`] skips the clock
//! read entirely, so un-instrumented behaviour is preserved to the
//! nanosecond that matters: a property test in the workspace proves
//! decisions, trials, and scenario fingerprints are bit-identical with
//! metrics on vs off.
//!
//! Latency is tracked in [`Histogram`]s with power-of-two bucket bounds
//! (bucket `i ≥ 1` spans `[2^(i-1), 2^i)` nanoseconds), which cost one
//! `leading_zeros` plus one atomic add per sample. Exact sums and counts
//! are kept alongside the buckets, so callers that need finer resolution
//! than a power of two (the pipeline bench trend check, for instance) can
//! difference `sum_ns`/`count` across [`MetricsRegistry::reset`] calls.
//!
//! The global [`MetricsRegistry`] ([`registry`]) names every metric the
//! stack records; [`MetricsRegistry::snapshot`] freezes it into plain
//! serializable structs for JSON reporting. See `docs/observability.md`
//! for the metric catalogue and schema.

#![warn(missing_docs)]

pub mod fingerprint;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;

pub use fingerprint::Fingerprint;

/// Number of histogram buckets. Bucket 0 holds exact zeros; bucket
/// `i ≥ 1` spans `[2^(i-1), 2^i)` ns; the last bucket absorbs everything
/// from `2^(BUCKETS-2)` ns (≈ 2.3 minutes) upward.
pub const BUCKETS: usize = 38;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global metrics recording on or off (default: off).
///
/// The flag is advisory and relaxed: toggling it concurrently with
/// in-flight recordings may record or drop a handful of samples either
/// way, but never blocks or corrupts a recorder.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global metrics recording is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event counter.
///
/// `const`-constructible so registries can live in `static`s without lazy
/// initialization. All operations are relaxed atomics: counts are exact
/// under concurrency, but cross-metric snapshots are only loosely
/// consistent (good enough for reporting, never authoritative for
/// control flow).
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` if metrics are enabled; a single relaxed load otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` unconditionally (ignores the global enable flag).
    ///
    /// For standalone counters owned by tests or tools; instrumented
    /// production paths use [`Counter::add`].
    #[inline]
    pub fn add_always(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A started (or suppressed) latency measurement.
///
/// [`Stopwatch::start`] reads the clock only when metrics are enabled;
/// when disabled the stopwatch is inert and recording it is a no-op, so
/// the cost on a disabled hot path is one relaxed load and a branch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts a measurement if metrics are enabled.
    #[inline]
    pub fn start() -> Self {
        if is_enabled() {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// A stopwatch that never records (for explicit suppression).
    #[inline]
    pub fn disabled() -> Self {
        Stopwatch(None)
    }

    /// Nanoseconds elapsed since start, if the stopwatch is live.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t0| {
            let ns = t0.elapsed().as_nanos();
            u64::try_from(ns).unwrap_or(u64::MAX)
        })
    }
}

/// A fixed-bucket latency histogram with power-of-two bounds.
///
/// All storage is preallocated atomics: recording is one `leading_zeros`,
/// three relaxed `fetch_add`s and two relaxed min/max updates — no
/// allocation, no locks. `count == Σ bucket counts` holds exactly at any
/// quiescent point (each recording touches count and its bucket with
/// separate atomics, so a mid-flight reader may observe them one apart).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Bucket index for a nanosecond value: 0 for 0, else `bit_width(ns)`
/// clamped to the top bucket (so bucket `i ≥ 1` spans `[2^(i-1), 2^i)`).
#[inline]
fn bucket_index(ns: u64) -> usize {
    let width = (u64::BITS - ns.leading_zeros()) as usize;
    width.min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`, in nanoseconds.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i`, in nanoseconds (`u64::MAX` for
/// the open-ended top bucket).
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records a nanosecond sample unconditionally (ignores the global
    /// enable flag; gating happens in [`Stopwatch::start`]).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records the elapsed time of a live stopwatch; no-op for an inert
    /// one. This is the hot-path recording entry point.
    #[inline]
    pub fn record(&self, sw: Stopwatch) {
        if let Some(ns) = sw.elapsed_ns() {
            self.record_ns(ns);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Clears all buckets and aggregates.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    /// Freezes the histogram into a plain serializable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Midpoint of the bucket's span: a bounded estimate,
                    // never off by more than the power-of-two resolution.
                    let hi = if i == BUCKETS - 1 {
                        self.max_ns.load(Ordering::Relaxed)
                    } else {
                        bucket_hi(i)
                    };
                    return bucket_lo(i) + (hi.saturating_sub(bucket_lo(i))) / 2;
                }
            }
            self.max_ns.load(Ordering::Relaxed)
        };
        let nonempty: Vec<BucketSnapshot> = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| BucketSnapshot {
                lo_ns: bucket_lo(i),
                hi_ns: bucket_hi(i),
                count: c,
            })
            .collect();
        HistogramSnapshot {
            count,
            sum_ns,
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            mean_ns: if count == 0 {
                0.0
            } else {
                sum_ns as f64 / count as f64
            },
            p50_ns: quantile(0.50),
            p90_ns: quantile(0.90),
            p99_ns: quantile(0.99),
            buckets: nonempty,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One occupied histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BucketSnapshot {
    /// Inclusive lower bound, ns.
    pub lo_ns: u64,
    /// Exclusive upper bound, ns (`u64::MAX` for the top bucket).
    pub hi_ns: u64,
    /// Samples in this bucket.
    pub count: u64,
}

/// A frozen summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Exact sum of all samples, ns.
    pub sum_ns: u64,
    /// Smallest recorded sample, ns (0 when empty).
    pub min_ns: u64,
    /// Largest recorded sample, ns.
    pub max_ns: u64,
    /// Exact mean (`sum_ns / count`), ns.
    pub mean_ns: f64,
    /// Median estimate (bucket-midpoint, power-of-two resolution), ns.
    pub p50_ns: u64,
    /// 90th-percentile estimate, ns.
    pub p90_ns: u64,
    /// 99th-percentile estimate, ns.
    pub p99_ns: u64,
    /// Occupied buckets only, in ascending bound order.
    pub buckets: Vec<BucketSnapshot>,
}

/// Number of hazard-event counters (mirrors
/// `HazardCategory::ALL.len()` in `el-uavsim`; the campaign runner
/// indexes these by that array's order).
pub const HAZARD_SLOTS: usize = 6;

/// Every metric the emergency-landing stack records, preallocated.
///
/// Lives behind [`registry`] as a process-wide static; see
/// `docs/observability.md` for what each field measures and where it is
/// recorded from.
#[derive(Debug)]
pub struct MetricsRegistry {
    // -- monitor engine --------------------------------------------------
    /// `Monitor::verify` wall time, one sample per crop.
    pub verify_latency: Histogram,
    /// `Monitor::verify_batch_seeded` wall time, one sample per batch.
    pub verify_batch_latency: Histogram,
    /// One Monte-Carlo fold step (stochastic forward pass + softmax +
    /// Welford push), recorded inside the chunk engine. The engine folds
    /// consecutive samples as fused pairs, so a pair records one sample
    /// here; compare against [`MetricsRegistry::samples_run`] for the
    /// true sample count.
    pub sample_fold: Histogram,
    /// Monte-Carlo samples executed.
    pub samples_run: Counter,
    /// One `gemm_bias` kernel invocation, recorded in `el-kernels`.
    pub gemm: Histogram,
    // -- tiled audit -----------------------------------------------------
    /// Cost of verifying one audit tile.
    pub tile_cost: Histogram,
    /// Tiles refused admission by the predictive budget check (counts
    /// every tile left unverified when the check fires).
    pub tile_refusals: Counter,
    /// Tiles the audit pass planned to verify.
    pub tiles_planned: Counter,
    /// Tiles actually verified before the budget expired.
    pub tiles_verified: Counter,
    /// Tiles whose statistics came from an approximate-contract kernel
    /// rung (audit sweeps running `Contract::Approximate`).
    pub audit_approx_tiles: Counter,
    /// Approximate audit tiles re-run through the exact path by the
    /// online cross-check.
    pub audit_crosschecks: Counter,
    /// Hard fallbacks: cross-checks whose divergence exceeded the
    /// calibrated tolerance, switching the rest of the sweep to exact.
    pub audit_fallbacks: Counter,
    // -- pipeline stages -------------------------------------------------
    /// `ElPipeline::run` propose stage (segmentation + zone proposal).
    pub stage_propose: Histogram,
    /// `ElPipeline::run` verify stage (batched monitor verification).
    pub stage_verify: Histogram,
    /// `ElPipeline::run` decide stage (sequential decision replay).
    pub stage_decide: Histogram,
    /// `ElPipeline::run` audit stage (budgeted tiled audit).
    pub stage_audit: Histogram,
    /// Completed `ElPipeline::run` invocations.
    pub pipeline_runs: Counter,
    /// Monitor trials replayed by the decision stage.
    pub verify_trials: Counter,
    // -- campaign --------------------------------------------------------
    /// Wall time of one simulated mission.
    pub mission_wall: Histogram,
    /// Missions executed.
    pub missions_run: Counter,
    /// Hazard events observed across missions, indexed by
    /// `HazardCategory::ALL` order.
    pub hazard_events: [Counter; HAZARD_SLOTS],
    // -- multi-stream service --------------------------------------------
    /// `ElService::tick` wall time (one coalesced cross-stream batch).
    pub serve_tick: Histogram,
    /// Crops per coalesced verify batch (a count distribution — the
    /// histogram's ns buckets double as plain power-of-two count bins).
    pub serve_batch_crops: Histogram,
    /// Frames pending at tick start (same count-distribution convention).
    pub serve_queue_depth: Histogram,
    /// Frames fully processed by the service (admitted and decided).
    pub serve_frames: Counter,
    /// Frames refused admission by the predictive cost model.
    pub serve_refusals: Counter,
    /// Sessions opened over the service's lifetime.
    pub serve_sessions: Counter,
    // -- fleet risk map --------------------------------------------------
    /// `RiskMap::ingest_batch` wall time, one sample per tick batch.
    pub riskmap_ingest: Histogram,
    /// Cells at or above the veto threshold after each tick's ingestion
    /// (count distribution — the ns buckets double as count bins).
    pub riskmap_cells_hot: Histogram,
    /// Eager decay sweeps executed over the whole grid.
    pub riskmap_decay_sweeps: Counter,
    /// Zone candidates vetoed by the risk screen before verification.
    pub riskmap_vetoes: Counter,
    /// Zone candidates deprioritised (kept, moved behind clear ones).
    pub riskmap_deprioritized: Counter,
    /// Anomalous regions accepted into the grid.
    pub riskmap_regions: Counter,
    /// Regions rejected at ingestion (non-finite score).
    pub riskmap_rejects: Counter,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            verify_latency: Histogram::new(),
            verify_batch_latency: Histogram::new(),
            sample_fold: Histogram::new(),
            samples_run: Counter::new(),
            gemm: Histogram::new(),
            tile_cost: Histogram::new(),
            tile_refusals: Counter::new(),
            tiles_planned: Counter::new(),
            tiles_verified: Counter::new(),
            audit_approx_tiles: Counter::new(),
            audit_crosschecks: Counter::new(),
            audit_fallbacks: Counter::new(),
            stage_propose: Histogram::new(),
            stage_verify: Histogram::new(),
            stage_decide: Histogram::new(),
            stage_audit: Histogram::new(),
            pipeline_runs: Counter::new(),
            verify_trials: Counter::new(),
            mission_wall: Histogram::new(),
            missions_run: Counter::new(),
            hazard_events: [const { Counter::new() }; HAZARD_SLOTS],
            serve_tick: Histogram::new(),
            serve_batch_crops: Histogram::new(),
            serve_queue_depth: Histogram::new(),
            serve_frames: Counter::new(),
            serve_refusals: Counter::new(),
            serve_sessions: Counter::new(),
            riskmap_ingest: Histogram::new(),
            riskmap_cells_hot: Histogram::new(),
            riskmap_decay_sweeps: Counter::new(),
            riskmap_vetoes: Counter::new(),
            riskmap_deprioritized: Counter::new(),
            riskmap_regions: Counter::new(),
            riskmap_rejects: Counter::new(),
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        self.verify_latency.reset();
        self.verify_batch_latency.reset();
        self.sample_fold.reset();
        self.samples_run.reset();
        self.gemm.reset();
        self.tile_cost.reset();
        self.tile_refusals.reset();
        self.tiles_planned.reset();
        self.tiles_verified.reset();
        self.audit_approx_tiles.reset();
        self.audit_crosschecks.reset();
        self.audit_fallbacks.reset();
        self.stage_propose.reset();
        self.stage_verify.reset();
        self.stage_decide.reset();
        self.stage_audit.reset();
        self.pipeline_runs.reset();
        self.verify_trials.reset();
        self.mission_wall.reset();
        self.missions_run.reset();
        for c in &self.hazard_events {
            c.reset();
        }
        self.serve_tick.reset();
        self.serve_batch_crops.reset();
        self.serve_queue_depth.reset();
        self.serve_frames.reset();
        self.serve_refusals.reset();
        self.serve_sessions.reset();
        self.riskmap_ingest.reset();
        self.riskmap_cells_hot.reset();
        self.riskmap_decay_sweeps.reset();
        self.riskmap_vetoes.reset();
        self.riskmap_deprioritized.reset();
        self.riskmap_regions.reset();
        self.riskmap_rejects.reset();
    }

    /// Freezes the whole registry into plain serializable structs.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let planned = self.tiles_planned.get();
        let verified = self.tiles_verified.get();
        MetricsSnapshot {
            enabled: is_enabled(),
            monitor: MonitorMetrics {
                verify: self.verify_latency.snapshot(),
                verify_batch: self.verify_batch_latency.snapshot(),
                sample_fold: self.sample_fold.snapshot(),
                gemm: self.gemm.snapshot(),
                samples_run: self.samples_run.get(),
            },
            audit: AuditMetrics {
                tile_cost: self.tile_cost.snapshot(),
                refusals: self.tile_refusals.get(),
                planned,
                verified,
                coverage: if planned == 0 {
                    1.0
                } else {
                    verified as f64 / planned as f64
                },
                approx_tiles: self.audit_approx_tiles.get(),
                crosschecks: self.audit_crosschecks.get(),
                fallbacks: self.audit_fallbacks.get(),
            },
            pipeline: PipelineMetrics {
                propose: self.stage_propose.snapshot(),
                verify: self.stage_verify.snapshot(),
                decide: self.stage_decide.snapshot(),
                audit: self.stage_audit.snapshot(),
                runs: self.pipeline_runs.get(),
                trials: self.verify_trials.get(),
            },
            campaign: CampaignMetrics {
                mission_wall: self.mission_wall.snapshot(),
                missions: self.missions_run.get(),
                hazard_events: self.hazard_events.iter().map(Counter::get).collect(),
            },
            serve: ServeMetrics {
                tick: self.serve_tick.snapshot(),
                batch_crops: self.serve_batch_crops.snapshot(),
                queue_depth: self.serve_queue_depth.snapshot(),
                frames: self.serve_frames.get(),
                refusals: self.serve_refusals.get(),
                sessions: self.serve_sessions.get(),
            },
            riskmap: RiskmapMetrics {
                ingest: self.riskmap_ingest.snapshot(),
                cells_hot: self.riskmap_cells_hot.snapshot(),
                decay_sweeps: self.riskmap_decay_sweeps.get(),
                vetoes: self.riskmap_vetoes.get(),
                deprioritized: self.riskmap_deprioritized.get(),
                regions: self.riskmap_regions.get(),
                rejects: self.riskmap_rejects.get(),
            },
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

static REGISTRY: MetricsRegistry = MetricsRegistry::new();

/// The process-wide metrics registry.
#[inline]
pub fn registry() -> &'static MetricsRegistry {
    &REGISTRY
}

/// Monitor-engine metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MonitorMetrics {
    /// Per-crop `Monitor::verify` latency.
    pub verify: HistogramSnapshot,
    /// Per-batch `Monitor::verify_batch` latency.
    pub verify_batch: HistogramSnapshot,
    /// Per-sample Monte-Carlo fold latency.
    pub sample_fold: HistogramSnapshot,
    /// Per-call GEMM kernel latency.
    pub gemm: HistogramSnapshot,
    /// Monte-Carlo samples executed.
    pub samples_run: u64,
}

/// Tiled-audit metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditMetrics {
    /// Per-tile verification cost.
    pub tile_cost: HistogramSnapshot,
    /// Tiles refused admission on budget grounds.
    pub refusals: u64,
    /// Tiles planned across all audit passes.
    pub planned: u64,
    /// Tiles verified across all audit passes.
    pub verified: u64,
    /// `verified / planned` (1.0 when nothing was planned).
    pub coverage: f64,
    /// Tiles verified on an approximate-contract rung.
    pub approx_tiles: u64,
    /// Approximate tiles cross-checked against the exact path.
    pub crosschecks: u64,
    /// Cross-checks that hard-failed back to the exact path.
    pub fallbacks: u64,
}

/// Pipeline-stage metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineMetrics {
    /// Propose-stage latency.
    pub propose: HistogramSnapshot,
    /// Verify-stage latency.
    pub verify: HistogramSnapshot,
    /// Decide-stage latency.
    pub decide: HistogramSnapshot,
    /// Audit-stage latency.
    pub audit: HistogramSnapshot,
    /// Completed pipeline runs.
    pub runs: u64,
    /// Monitor trials replayed.
    pub trials: u64,
}

/// Campaign-runner metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignMetrics {
    /// Per-mission wall time.
    pub mission_wall: HistogramSnapshot,
    /// Missions executed.
    pub missions: u64,
    /// Hazard events by `HazardCategory::ALL` index.
    pub hazard_events: Vec<u64>,
}

/// Multi-stream service metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeMetrics {
    /// Per-tick latency (one coalesced cross-stream batch).
    pub tick: HistogramSnapshot,
    /// Crops per coalesced verify batch (count distribution).
    pub batch_crops: HistogramSnapshot,
    /// Frames pending at tick start (count distribution).
    pub queue_depth: HistogramSnapshot,
    /// Frames fully processed.
    pub frames: u64,
    /// Frames refused admission.
    pub refusals: u64,
    /// Sessions opened.
    pub sessions: u64,
}

/// Fleet risk-map metrics, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RiskmapMetrics {
    /// Per-tick batch ingestion latency.
    pub ingest: HistogramSnapshot,
    /// Cells at/above the veto threshold per tick (count distribution).
    pub cells_hot: HistogramSnapshot,
    /// Eager decay sweeps executed.
    pub decay_sweeps: u64,
    /// Candidates vetoed before verification.
    pub vetoes: u64,
    /// Candidates deprioritised before verification.
    pub deprioritized: u64,
    /// Regions accepted into the grid.
    pub regions: u64,
    /// Regions rejected at ingestion (non-finite score).
    pub rejects: u64,
}

/// The whole registry, frozen for JSON reporting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Whether recording was enabled at snapshot time.
    pub enabled: bool,
    /// Monitor-engine metrics.
    pub monitor: MonitorMetrics,
    /// Tiled-audit metrics.
    pub audit: AuditMetrics,
    /// Pipeline-stage metrics.
    pub pipeline: PipelineMetrics,
    /// Campaign-runner metrics.
    pub campaign: CampaignMetrics,
    /// Multi-stream service metrics.
    pub serve: ServeMetrics,
    /// Fleet risk-map metrics.
    pub riskmap: RiskmapMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The enable flag is process-global; tests that touch it serialize
    // through this lock so cargo's parallel test threads don't race.
    static FLAG: Mutex<()> = Mutex::new(());

    #[test]
    fn bucket_bounds_partition_the_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i < BUCKETS - 1 {
                assert_eq!(bucket_index(bucket_hi(i) - 1), i);
                assert_eq!(bucket_index(bucket_hi(i)), i + 1);
            }
        }
    }

    #[test]
    fn histogram_aggregates_are_exact() {
        let h = Histogram::new();
        for ns in [0u64, 1, 7, 8, 1023, 1024, 5_000_000] {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum_ns, 5_002_063);
        assert_eq!(snap.min_ns, 0);
        assert_eq!(snap.max_ns, 5_000_000);
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, snap.count);
        // 0 and 1 land in distinct buckets; 1023 and 1024 too.
        assert!(snap.buckets.len() >= 5);
    }

    #[test]
    fn quantiles_stay_within_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(10_000);
        }
        let snap = h.snapshot();
        // p50 must fall in 100's bucket [64, 128).
        assert!((64..128).contains(&snap.p50_ns), "p50 {}", snap.p50_ns);
        // p99 must fall in 10_000's bucket [8192, 16384).
        assert!((8192..16384).contains(&snap.p99_ns), "p99 {}", snap.p99_ns);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 4;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.record_ns(t as u64 * 1000 + i % 257);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, threads as u64 * per_thread);
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, snap.count);
    }

    #[test]
    fn disabled_stopwatch_and_counter_record_nothing() {
        let _guard = FLAG.lock().unwrap();
        set_enabled(false);
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(Stopwatch::start());
        assert_eq!(h.count(), 0);
        set_enabled(true);
        c.add(5);
        assert_eq!(c.get(), 5);
        h.record(Stopwatch::start());
        assert_eq!(h.count(), 1);
        set_enabled(false);
    }

    #[test]
    fn serve_group_snapshots_and_resets() {
        let reg = MetricsRegistry::new();
        reg.serve_tick.record_ns(2_000);
        reg.serve_batch_crops.record_ns(6);
        reg.serve_queue_depth.record_ns(3);
        reg.serve_frames.add_always(8);
        reg.serve_refusals.add_always(2);
        reg.serve_sessions.add_always(4);
        let snap = reg.snapshot();
        assert_eq!(snap.serve.tick.count, 1);
        assert_eq!(snap.serve.batch_crops.sum_ns, 6);
        assert_eq!(snap.serve.queue_depth.max_ns, 3);
        assert_eq!(snap.serve.frames, 8);
        assert_eq!(snap.serve.refusals, 2);
        assert_eq!(snap.serve.sessions, 4);
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        assert!(json.contains("\"serve\""));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.serve.tick.count, 0);
        assert_eq!(snap.serve.frames, 0);
    }

    #[test]
    fn riskmap_group_snapshots_and_resets() {
        let reg = MetricsRegistry::new();
        reg.riskmap_ingest.record_ns(900);
        reg.riskmap_cells_hot.record_ns(5);
        reg.riskmap_decay_sweeps.add_always(2);
        reg.riskmap_vetoes.add_always(3);
        reg.riskmap_deprioritized.add_always(1);
        reg.riskmap_regions.add_always(7);
        reg.riskmap_rejects.add_always(1);
        let snap = reg.snapshot();
        assert_eq!(snap.riskmap.ingest.count, 1);
        assert_eq!(snap.riskmap.cells_hot.max_ns, 5);
        assert_eq!(snap.riskmap.decay_sweeps, 2);
        assert_eq!(snap.riskmap.vetoes, 3);
        assert_eq!(snap.riskmap.deprioritized, 1);
        assert_eq!(snap.riskmap.regions, 7);
        assert_eq!(snap.riskmap.rejects, 1);
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        assert!(json.contains("\"riskmap\""));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.riskmap.ingest.count, 0);
        assert_eq!(snap.riskmap.vetoes, 0);
    }

    #[test]
    fn audit_precision_counters_snapshot_and_reset() {
        let reg = MetricsRegistry::new();
        reg.audit_approx_tiles.add_always(9);
        reg.audit_crosschecks.add_always(2);
        reg.audit_fallbacks.add_always(1);
        let snap = reg.snapshot();
        assert_eq!(snap.audit.approx_tiles, 9);
        assert_eq!(snap.audit.crosschecks, 2);
        assert_eq!(snap.audit.fallbacks, 1);
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        assert!(json.contains("\"approx_tiles\""));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.audit.approx_tiles, 0);
        assert_eq!(snap.audit.crosschecks, 0);
        assert_eq!(snap.audit.fallbacks, 0);
    }

    #[test]
    fn registry_snapshot_serializes() {
        let _guard = FLAG.lock().unwrap();
        let reg = MetricsRegistry::new();
        reg.stage_propose.record_ns(1500);
        reg.pipeline_runs.add_always(1);
        let snap = reg.snapshot();
        assert_eq!(snap.pipeline.propose.count, 1);
        assert_eq!(snap.pipeline.runs, 1);
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        assert!(json.contains("\"pipeline\""));
        assert!(json.contains("\"sum_ns\":1500"));
        reg.reset();
        assert_eq!(reg.snapshot().pipeline.propose.count, 0);
        assert_eq!(reg.snapshot().pipeline.runs, 0);
    }
}

//! Shared fixtures for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! `EXPERIMENTS.md` at the workspace root for the experiment index). The
//! perception benches share a deterministic benchmark dataset and a
//! trained model; training is deterministic, so the trained weights are
//! cached on disk under `target/` to keep `cargo bench` iteration fast.

use std::path::PathBuf;
use std::sync::OnceLock;

use el_scene::{Dataset, DatasetConfig};
use el_seg::{MsdNet, MsdNetConfig, TrainConfig, Trainer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The dataset seed shared by every experiment.
pub const BENCH_SEED: u64 = 1;

/// The benchmark dataset (generated once per process).
pub fn benchmark_dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| Dataset::generate(&DatasetConfig::benchmark(BENCH_SEED)))
}

fn cache_path() -> PathBuf {
    // Benches run with the package directory as cwd; resolve the
    // workspace target dir from the manifest location instead.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    PathBuf::from(target).join("el-bench-trained-model.json")
}

/// The trained benchmark model.
///
/// Training is fully deterministic (`TrainConfig::benchmark` on the
/// benchmark dataset), so the weights are cached as JSON under `target/`;
/// delete that file to force a retrain.
pub fn trained_model() -> MsdNet {
    static JSON: OnceLock<String> = OnceLock::new();
    let json = JSON.get_or_init(|| {
        let path = cache_path();
        if let Ok(json) = std::fs::read_to_string(&path) {
            if MsdNet::from_json(&json).is_ok() {
                eprintln!(
                    "[el-bench] loaded cached trained model from {}",
                    path.display()
                );
                return json;
            }
        }
        eprintln!("[el-bench] training benchmark model (deterministic, cached after)...");
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = MsdNet::new(&MsdNetConfig::default_uavid(), &mut rng);
        Trainer::new(TrainConfig::benchmark()).train(&mut net, benchmark_dataset());
        let json = net.to_json();
        let _ = std::fs::write(&path, &json);
        json
    });
    MsdNet::from_json(json).expect("cached model parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_benchmark_sized() {
        let ds = benchmark_dataset();
        assert!(ds.samples.len() >= 20);
    }
}

//! Experiment P4: the kernel-tier ladder on the paper-config shapes.
//!
//! Times every kernel tier the host CPU supports — portable → SSE2 →
//! AVX2 → AVX-512F on x86_64, NEON on aarch64 — on the exact GEMM
//! shapes the trained paper-config MSDnet lowers to (branch im2col,
//! fusion head, classifier head; 48x48 verification crops and 128x128
//! audit tiles), plus the coordinate-keyed mask rows and the ChaCha8
//! refill. All tiers produce bit-identical outputs (property-tested in
//! `tests/kernel_tiers.rs` and asserted again here), so the tables are
//! pure latency comparisons: this is the data BENCH tracks per tier.
//!
//! Pin a tier for the whole engine with `EL_FORCE_KERNEL=<tier>`; this
//! bench instead times every supported tier in one process through
//! `Kernels::for_tier`.

use el_kernels::chacha::REFILL_WORDS;
use el_kernels::{chacha, gemm, welford, KernelTier, Kernels};
use el_seg::MsdNetConfig;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall-clock of `f`, in seconds (minima are the stable
/// estimator on a shared box).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn fill(seed: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((seed * 131 + i) as f32) * 0.0137).sin())
        .collect()
}

/// The GEMM shapes (`m x k_dim x n`) the paper-config network lowers
/// to: one im2col GEMM per dilated branch and one per 1x1 head, for a
/// 48x48 verification crop and a 128x128 audit tile.
fn paper_gemm_shapes() -> Vec<(String, usize, usize, usize)> {
    let cfg = MsdNetConfig::default_uavid();
    let k_branch = cfg.in_channels * 9; // 3x3 taps
    let fused = cfg.branch_channels * cfg.dilations.len();
    let mut shapes = Vec::new();
    for (label, hw) in [("48x48 crop", 48 * 48), ("128x128 tile", 128 * 128)] {
        shapes.push((
            format!("branch 3x3 ({label})"),
            cfg.branch_channels,
            k_branch,
            hw,
        ));
        shapes.push((format!("head1 1x1 ({label})"), cfg.head_hidden, fused, hw));
        shapes.push((
            format!("head2 1x1 ({label})"),
            cfg.classes,
            cfg.head_hidden,
            hw,
        ));
    }
    shapes
}

fn print_gemm_tiers(tiers: &[&'static Kernels]) {
    eprintln!("\n===== P4a: GEMM micro-kernel per tier (paper-config conv shapes) =====");
    eprint!("{:>24} {:>14}", "shape (m x k x n)", "GFLOP");
    for k in tiers {
        eprint!(" {:>14}", format!("{} (ms)", k.tier().name()));
    }
    eprintln!(" {:>9}", "best/port");
    for (label, m, k_dim, n) in paper_gemm_shapes() {
        let a = fill(1, m * k_dim);
        let b = fill(2, k_dim * n);
        let bias = fill(3, m);
        let mut out = vec![0.0f32; m * n];
        let mut expect = vec![0.0f32; m * n];
        gemm::gemm_bias_portable(&a, &b, &bias, &mut expect, m, k_dim, n);
        let flop = 2.0 * (m * k_dim * n) as f64 * 1e-9;
        eprint!("{:>24} {:>14.3}", format!("{label} {m}x{k_dim}x{n}"), flop);
        let mut best_ratio = f64::INFINITY;
        let mut portable_t = f64::NAN;
        for kernels in tiers {
            let t = best_of(9, || {
                kernels.gemm_bias(
                    black_box(&a),
                    black_box(&b),
                    &bias,
                    black_box(&mut out),
                    m,
                    k_dim,
                    n,
                );
            });
            assert!(
                out.iter()
                    .zip(&expect)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} GEMM diverged — the comparison is meaningless",
                kernels.tier().name()
            );
            if kernels.tier() == KernelTier::Portable {
                portable_t = t;
            }
            best_ratio = best_ratio.min(t);
            eprint!(" {:>14.4}", t * 1e3);
        }
        eprintln!(" {:>8.2}x", portable_t / best_ratio);
    }
}

fn print_mask_tiers(tiers: &[&'static Kernels]) {
    eprintln!("\n===== P4b: keyed-mask rows per tier (one MC sample's masking) =====");
    // One Monte-Carlo sample of the paper config masks 48 fused channels
    // plus 32 head channels over the crop/tile area.
    for (label, w, rows) in [
        ("48x48 crop", 48usize, 48 * 80usize),
        ("128x128 tile", 128, 128 * 80),
    ] {
        eprint!("{:>16}", label);
        let src = fill(7, w);
        let mut dst = vec![0.0f32; w];
        for kernels in tiers {
            let t = best_of(9, || {
                for r in 0..rows {
                    kernels.mask_scale_row(r as u32, 0, 0.5, 2.0, black_box(&src), &mut dst);
                }
                black_box(&mut dst);
            });
            eprint!(" {:>7}: {:>8.3} ms", kernels.tier().name(), t * 1e3);
        }
        eprintln!();
    }
}

fn print_welford_tiers(tiers: &[&'static Kernels]) {
    eprintln!("\n===== P4d: Welford fold per tier (10-sample per-pixel mean/M2) =====");
    // One verification's statistics fold exactly as the engine runs it:
    // 10 Monte-Carlo sample slabs of (classes x h·w) softmax scores
    // folded as fused pairs into 64-byte-aligned mean/M2 accumulators,
    // then the fixed-order chunk merge. Every tier does identical work;
    // the ground truth is the portable *single-push* fold, so the
    // asserted bit-identity also re-proves that pairing never changes
    // the statistics.
    let cfg = MsdNetConfig::default_uavid();
    let samples = 10usize;
    // Inner repeats keep each timed rep near half a millisecond — a
    // single 48x48 fold is ~40 µs, too short to time stably on a busy
    // box.
    for (label, hw, inner) in [
        ("48x48 crop", 48 * 48usize, 8usize),
        ("128x128 tile", 128 * 128, 1),
    ] {
        let len = cfg.classes * hw;
        let slabs: Vec<Vec<f32>> = (0..samples).map(|k| fill(11 + k, len)).collect();
        // Portable single-push ground truth — also the bits every tier's
        // pair fold must produce.
        let (mut em, mut es) = (vec![0.0f32; len], vec![0.0f32; len]);
        for (k, xs) in slabs.iter().enumerate() {
            welford::welford_push_portable(&mut em, &mut es, xs, (k + 1) as f32);
        }
        let (na, nb) = (samples as f32, samples as f32);
        let n = na + nb;
        let mut emerged = (em.clone(), es.clone());
        welford::welford_merge_portable(
            &mut emerged.0,
            &mut emerged.1,
            &em,
            &es,
            nb / n,
            na * nb / n,
        );
        eprint!("{:>16}", label);
        let mut portable_t = f64::NAN;
        let mut last_t = f64::NAN;
        for kernels in tiers {
            let mut m = welford::AlignedF32::zeroed(len);
            let mut s = welford::AlignedF32::zeroed(len);
            let t = best_of(15, || {
                for _ in 0..inner {
                    m.as_mut_slice().fill(0.0);
                    s.as_mut_slice().fill(0.0);
                    let mut k = 0usize;
                    while k + 2 <= samples {
                        kernels.welford_push2(
                            m.as_mut_slice(),
                            s.as_mut_slice(),
                            black_box(&slabs[k]),
                            &slabs[k + 1],
                            (k + 1) as f32,
                        );
                        k += 2;
                    }
                    while k < samples {
                        kernels.welford_push(
                            m.as_mut_slice(),
                            s.as_mut_slice(),
                            black_box(&slabs[k]),
                            (k + 1) as f32,
                        );
                        k += 1;
                    }
                    kernels.welford_merge(
                        m.as_mut_slice(),
                        s.as_mut_slice(),
                        black_box(&em),
                        &es,
                        nb / n,
                        na * nb / n,
                    );
                    black_box(&mut m);
                }
            }) / inner as f64;
            assert!(
                m.as_slice()
                    .iter()
                    .zip(&emerged.0)
                    .chain(s.as_slice().iter().zip(&emerged.1))
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} Welford fold diverged — the comparison is meaningless",
                kernels.tier().name()
            );
            if kernels.tier() == KernelTier::Portable {
                portable_t = t;
            }
            last_t = t;
            eprint!(" {:>7}: {:>8.3} ms", kernels.tier().name(), t * 1e3);
        }
        eprintln!("   widest/port {:>5.2}x", portable_t / last_t);
    }
}

fn print_chacha_tiers(tiers: &[&'static Kernels]) {
    eprintln!("\n===== P4c: ChaCha8 refill per tier =====");
    let key: [u32; 8] = core::array::from_fn(|i| 0x9E37_79B9u32.wrapping_mul(i as u32 + 1));
    let mut out = [0u32; REFILL_WORDS];
    let refills = 20_000usize;
    let mut expect = [0u32; REFILL_WORDS];
    chacha::chacha_blocks_portable(&key, 0, &mut expect);
    for kernels in tiers {
        kernels.chacha_blocks(&key, 0, &mut out);
        assert_eq!(out, expect, "keystream diverged");
        let t = best_of(9, || {
            for c in 0..refills {
                kernels.chacha_blocks(black_box(&key), c as u64, &mut out);
            }
            black_box(&mut out);
        });
        let words_per_s = (refills * REFILL_WORDS) as f64 / t;
        eprintln!(
            "{:>10}: {:>8.2} ns/word ({:.1} M words/s)",
            kernels.tier().name(),
            1e9 / words_per_s,
            words_per_s * 1e-6
        );
    }
}

fn main() {
    let tiers: Vec<&'static Kernels> = KernelTier::supported()
        .into_iter()
        .map(|t| Kernels::for_tier(t).expect("supported tier resolves"))
        .collect();
    eprintln!(
        "detected tier: {} (supported: {})",
        KernelTier::detect().name(),
        tiers
            .iter()
            .map(|k| k.tier().name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    print_gemm_tiers(&tiers);
    print_mask_tiers(&tiers);
    print_welford_tiers(&tiers);
    print_chacha_tiers(&tiers);
}

//! Experiment S1 + T1/T3/T4: the Section III SORA application to
//! MEDI DELIVERY and the paper's normative tables.
//!
//! Prints the reproduced numbers (paper targets in brackets) and
//! benchmarks the assessment engine.

use criterion::{criterion_group, criterion_main, Criterion};
use el_sora::casestudy::{medi_delivery, paper_numbers};
use el_sora::report;
use el_sora::{ElMitigation, Sail};
use std::hint::black_box;

fn print_tables() {
    eprintln!("\n===== S1: SORA application to MEDI DELIVERY (paper Section III-D) =====");
    let n = paper_numbers();
    eprintln!(
        "ballistic speed: {:.1} m/s   [paper: 48.5]",
        n.ballistic_speed_mps
    );
    eprintln!(
        "kinetic energy:  {:.2} kJ    [paper: 8.23]",
        n.kinetic_energy_kj
    );
    eprintln!("intrinsic GRC:   {}          [paper: 6]", n.intrinsic_grc);
    eprintln!(
        "initial ARC:     {}      [paper: ARC-c]",
        n.initial_arc.label()
    );
    eprintln!(
        "SAIL with M3:    {}          [paper: 5]",
        n.sail_with_m3.map(|s| s.level()).unwrap_or(0)
    );
    eprintln!(
        "SAIL without M3: {}          [paper: 6]",
        n.sail_without_m3.map(|s| s.level()).unwrap_or(0)
    );
    let op = medi_delivery();
    let with_el = op.assess_with_el(ElMitigation::paper_target());
    eprintln!(
        "with EL (active-M1, medium robustness): final GRC {} -> SAIL {}",
        with_el.final_grc,
        with_el.sail.map(|s| s.level()).unwrap_or(0)
    );
    eprintln!("\n===== T1/T2: severity scale and ground risks =====");
    eprint!("{}", report::severity_table());
    eprint!("{}", report::ground_risk_table());
    eprintln!("\n===== T3/T4: proposed EL criteria =====");
    eprint!("{}", report::integrity_criteria_table());
    eprint!("{}", report::assurance_criteria_table());
    eprintln!("\n===== OSO burden (SORA Table 6) =====");
    eprint!("{}", report::oso_table(Sail::IV));
    eprint!("{}", report::oso_table(Sail::V));
}

fn bench(c: &mut Criterion) {
    print_tables();
    let op = medi_delivery();
    c.bench_function("sora/full_assessment", |b| {
        b.iter(|| black_box(op.assess_without_el()))
    });
    c.bench_function("sora/assessment_with_el", |b| {
        b.iter(|| black_box(op.assess_with_el(ElMitigation::paper_target())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment A2: ablations of the Bayesian machinery — sigma factor
//! (the paper's 3 = 99.7% bound), Monte-Carlo sample count (the paper's
//! 10) and dropout rate (the paper's 0.5).

use criterion::{criterion_group, criterion_main, Criterion};
use el_bench::{benchmark_dataset, trained_model};
use el_monitor::{bayesian_segment, MonitorQuality, MonitorRule};
use el_scene::Split;
use el_seg::segment;
use std::hint::black_box;

fn quality_for(
    rule: MonitorRule,
    samples: usize,
    dropout: Option<f32>,
    split: Split,
) -> MonitorQuality {
    let ds = benchmark_dataset();
    let mut net = trained_model();
    if let Some(rate) = dropout {
        net.set_dropout(rate);
    }
    let mut q = MonitorQuality::default();
    for s in ds.split(split) {
        // Core prediction always with the deployed (0.5-dropout) weights
        // in Eval mode — dropout only affects the stochastic passes.
        let core = segment(&mut net, &s.image);
        let core_safe = core.labels.map(|c| !c.is_busy_road());
        let stats = bayesian_segment(&net, &s.image, samples, 42);
        q.accumulate(&s.labels, &core_safe, &rule.warning_map(&stats));
    }
    q
}

fn print_tables() {
    eprintln!("\n===== A2a: sigma-factor sweep (paper: 3 = 99.7% confidence) =====");
    eprintln!(
        "{:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "k", "miss(OOD)", "fa(OOD)", "miss(ID)", "fa(ID)"
    );
    for k in [0.0f32, 1.0, 2.0, 3.0, 4.0] {
        let rule = MonitorRule {
            tau: 0.125,
            sigma_factor: k,
        };
        let ood = quality_for(rule, 10, None, Split::Ood);
        let id = quality_for(rule, 10, None, Split::Test);
        let mark = if k == 3.0 { "  <- paper" } else { "" };
        eprintln!(
            "{:>8.1} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3}{}",
            k,
            ood.miss_coverage().unwrap_or(f64::NAN),
            ood.false_alarm_rate().unwrap_or(f64::NAN),
            id.miss_coverage().unwrap_or(f64::NAN),
            id.false_alarm_rate().unwrap_or(f64::NAN),
            mark
        );
    }

    eprintln!("\n===== A2b: Monte-Carlo sample count (paper: 10) =====");
    eprintln!("{:>8} | {:>9} {:>9}", "N", "miss(OOD)", "fa(ID)");
    for n in [1usize, 2, 5, 10, 20] {
        let rule = MonitorRule::paper();
        let ood = quality_for(rule, n, None, Split::Ood);
        let id = quality_for(rule, n, None, Split::Test);
        let mark = if n == 10 { "  <- paper" } else { "" };
        eprintln!(
            "{:>8} | {:>9.3} {:>9.3}{}",
            n,
            ood.miss_coverage().unwrap_or(f64::NAN),
            id.false_alarm_rate().unwrap_or(f64::NAN),
            mark
        );
    }

    eprintln!("\n===== A2c: inference-time dropout rate (paper: 0.5) =====");
    eprintln!("{:>8} | {:>9} {:>9}", "p", "miss(OOD)", "fa(ID)");
    for p in [0.1f32, 0.3, 0.5, 0.7] {
        let rule = MonitorRule::paper();
        let ood = quality_for(rule, 10, Some(p), Split::Ood);
        let id = quality_for(rule, 10, Some(p), Split::Test);
        let mark = if p == 0.5 { "  <- paper" } else { "" };
        eprintln!(
            "{:>8.1} | {:>9.3} {:>9.3}{}",
            p,
            ood.miss_coverage().unwrap_or(f64::NAN),
            id.false_alarm_rate().unwrap_or(f64::NAN),
            mark
        );
    }
    eprintln!(
        "reading: k=0 (point estimate) loses OOD coverage; N=1 gives no sigma; higher p raises coverage at availability cost."
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let ds = benchmark_dataset();
    let net = trained_model();
    let sample = ds.split(Split::Test).next().unwrap();
    let mut group = c.benchmark_group("ablation_bayes");
    group.sample_size(10);
    for n in [1usize, 5, 10] {
        group.bench_function(format!("mc_samples_{n}"), |b| {
            b.iter(|| black_box(bayesian_segment(&net, &sample.image, n, 42)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment F4a/F4b: the paper's central Figure 4 claim, quantified.
//!
//! Figure 4a (in-distribution): the core model performs well and the
//! monitor raises few warnings on safe areas. Figure 4b (sunset OOD): the
//! core model "clearly fails", yet the monitor "triggers an uncertainty
//! warning for a large part of the road areas that was not covered by the
//! core model" while raising no warning on genuinely safe zones.

use criterion::{criterion_group, criterion_main, Criterion};
use el_bench::{benchmark_dataset, trained_model};
use el_monitor::{bayesian_segment, MonitorQuality, MonitorRule};
use el_scene::Split;
use el_seg::segment;
use el_seg::train::evaluate_split;
use std::hint::black_box;

fn print_tables() {
    let ds = benchmark_dataset();
    let mut net = trained_model();
    eprintln!("\n===== F4: core function quality (paper: good on UAVid test, fails OOD) =====");
    for split in [Split::Test, Split::Ood] {
        let cm = evaluate_split(&mut net, ds, split);
        eprintln!(
            "{split:?}: pixel-acc {:.3}  mean-IoU {:.3}  busy-road recall {:.3}",
            cm.pixel_accuracy(),
            cm.mean_iou(),
            cm.busy_road_recall().unwrap_or(f64::NAN)
        );
    }
    eprintln!("\n===== F4: Bayesian monitor (10 MC samples, tau=0.125, mu+3sigma <= tau) =====");
    let rule = MonitorRule::paper();
    for split in [Split::Test, Split::Ood] {
        let mut q = MonitorQuality::default();
        let mut sigma = 0.0;
        let mut n = 0;
        for s in ds.split(split) {
            let core = segment(&mut net, &s.image);
            let core_safe = core.labels.map(|c| !c.is_busy_road());
            let stats = bayesian_segment(&net, &s.image, 10, 42);
            sigma += stats.mean_uncertainty();
            n += 1;
            q.accumulate(&s.labels, &core_safe, &rule.warning_map(&stats));
        }
        eprintln!(
            "{split:?}: miss-coverage {:.3}  false-alarm {:.3}  road-warning-recall {:.3}  mean-sigma {:.4}",
            q.miss_coverage().unwrap_or(f64::NAN),
            q.false_alarm_rate().unwrap_or(f64::NAN),
            q.road_warning_recall().unwrap_or(f64::NAN),
            sigma / n as f64
        );
    }
    eprintln!(
        "shape check (paper Fig 4b): OOD miss-coverage must be 'a large part' (>0.5) and sigma must rise OOD."
    );
    // Point-estimate ablation: why the Bayesian sigma term matters.
    eprintln!("\n===== F4 ablation: point-estimate monitor (sigma term removed) =====");
    let point = MonitorRule::point_estimate(0.125);
    for split in [Split::Test, Split::Ood] {
        let mut q = MonitorQuality::default();
        for s in ds.split(split) {
            let core = segment(&mut net, &s.image);
            let core_safe = core.labels.map(|c| !c.is_busy_road());
            let stats = bayesian_segment(&net, &s.image, 10, 42);
            q.accumulate(&s.labels, &core_safe, &point.warning_map(&stats));
        }
        eprintln!(
            "{split:?}: miss-coverage {:.3}  false-alarm {:.3}",
            q.miss_coverage().unwrap_or(f64::NAN),
            q.false_alarm_rate().unwrap_or(f64::NAN)
        );
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let ds = benchmark_dataset();
    let mut net = trained_model();
    let sample = ds.split(Split::Test).next().unwrap();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("core_segmentation_256", |b| {
        b.iter(|| black_box(segment(&mut net, &sample.image)))
    });
    group.bench_function("bayesian_10_samples_256", |b| {
        b.iter(|| black_box(bayesian_segment(&net, &sample.image, 10, 42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

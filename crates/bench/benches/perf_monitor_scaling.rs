//! Experiment P1: the Section V-B timing argument, plus the engine
//! speedup that motivates the fast-path inference engine.
//!
//! The paper: "the monitor verifies a 1024x1024 image in less than 5
//! seconds, whereas it takes over a minute for the full [3840x2160]
//! image" (10 Monte-Carlo samples, Quadro P5000). The absolute numbers
//! are hardware-bound; the *shape* — verification cost scales with
//! pixels x samples, which is why the Figure 2 architecture verifies
//! small candidate crops instead of whole frames — is what this
//! experiment reproduces on CPU.
//!
//! On top of the scaling table, this bench anchors the engine against the
//! pre-optimization baseline (naive scalar convolution, one sequential
//! RNG stream, a full forward pass per sample): `Monitor::verify` at the
//! paper configuration (10 samples) must be **≥ 4x** faster than that
//! baseline. The engine's levers are the cached Monte-Carlo-invariant
//! prefix, the im2col/GEMM convolution kernel, workspace buffer reuse,
//! and the rayon-parallel sample chunks (see `el_monitor::bayes`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use el_bench::trained_model;
use el_monitor::{bayesian_segment, bayesian_segment_tensor_reference};
use el_scene::{Conditions, Scene, SceneParams};
use el_seg::data::image_to_tensor;
use std::hint::black_box;
use std::time::Instant;

fn crop(size: usize) -> el_scene::Image {
    let mut params = SceneParams::default_urban();
    params.width = size;
    params.height = size;
    let scene = Scene::generate(&params, 17);
    scene.render(&Conditions::nominal(), 3)
}

fn print_scaling_table() {
    let net = trained_model();
    eprintln!("\n===== P1: Bayesian verification cost vs crop size and samples =====");
    eprintln!(
        "{:>6} {:>8} {:>12} {:>14}",
        "size", "samples", "seconds", "s per Mpx-pass"
    );
    let mut per_mpx_pass = Vec::new();
    for size in [64usize, 128, 256] {
        let image = crop(size);
        for samples in [1usize, 5, 10, 20] {
            let t0 = Instant::now();
            let _ = bayesian_segment(&net, &image, samples, 42);
            let dt = t0.elapsed().as_secs_f64();
            let mpx_passes = (size * size * samples) as f64 / 1e6;
            per_mpx_pass.push(dt / mpx_passes);
            eprintln!(
                "{:>6} {:>8} {:>12.3} {:>14.3}",
                size,
                samples,
                dt,
                dt / mpx_passes
            );
        }
    }
    // Cost-per-megapixel-pass should be roughly constant: cost ∝ pixels x samples.
    let mean = per_mpx_pass.iter().sum::<f64>() / per_mpx_pass.len() as f64;
    let spread = per_mpx_pass
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    eprintln!(
        "cost per Mpx-pass: mean {:.3} s (min {:.3}, max {:.3}) -> approximately linear",
        mean, spread.0, spread.1
    );
    // The paper's comparison, extrapolated at 10 samples.
    let crop_s = 1024.0 * 1024.0 * 10.0 / 1e6 * mean;
    let full_s = 3840.0 * 2160.0 * 10.0 / 1e6 * mean;
    eprintln!(
        "extrapolated, 10 samples: 1024x1024 crop {:.1} s vs full 3840x2160 frame {:.1} s (ratio {:.1}x)",
        crop_s,
        full_s,
        full_s / crop_s
    );
    eprintln!(
        "paper (GPU): <5 s vs >60 s — same shape: full-frame Bayesian inference is prohibitive, so Figure 2 verifies candidate crops only."
    );
}

/// The tentpole measurement: engine vs pre-optimization baseline at the
/// paper configuration (10 Monte-Carlo samples).
fn print_engine_speedup() {
    let mut net = trained_model();
    eprintln!("\n===== engine speedup: Monitor::verify at paper config (10 samples) =====");
    eprintln!(
        "{:>6} {:>14} {:>14} {:>9}",
        "size", "baseline (s)", "engine (s)", "speedup"
    );
    for size in [64usize, 128] {
        let image = crop(size);
        let input = image_to_tensor(&image);
        // Warm both paths once so neither pays first-touch costs.
        let _ = bayesian_segment_tensor_reference(&mut net, &input, 1, 42);
        let _ = bayesian_segment(&net, &image, 1, 42);
        // Interleave the two paths and keep each side's best rep: noise
        // on a shared box hits both alike, and minima are the stable
        // estimator of each path's actual cost.
        let reps = 5;
        let mut base = f64::INFINITY;
        let mut engine = f64::INFINITY;
        for r in 0..reps {
            let t0 = Instant::now();
            black_box(bayesian_segment_tensor_reference(
                &mut net,
                &input,
                10,
                42 + r,
            ));
            base = base.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            black_box(bayesian_segment(&net, &image, 10, 42 + r));
            engine = engine.min(t0.elapsed().as_secs_f64());
        }
        eprintln!(
            "{:>6} {:>14.3} {:>14.3} {:>8.2}x",
            size,
            base,
            engine,
            base / engine
        );
    }
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    print_engine_speedup();
    let mut net = trained_model();
    let mut group = c.benchmark_group("monitor_scaling");
    group.sample_size(10);
    for size in [64usize, 128] {
        let image = crop(size);
        let input = image_to_tensor(&image);
        group.bench_with_input(
            BenchmarkId::new("verify_10_samples", size),
            &image,
            |b, img| b.iter(|| black_box(bayesian_segment(&net, img, 10, 42))),
        );
        group.bench_with_input(
            BenchmarkId::new("verify_10_samples_baseline", size),
            &input,
            |b, inp| b.iter(|| black_box(bayesian_segment_tensor_reference(&mut net, inp, 10, 42))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

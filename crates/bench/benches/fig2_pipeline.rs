//! Experiment F2: the Figure 2 safety architecture end to end —
//! accept / retry / abort statistics for the monitored pipeline vs the
//! unmonitored baseline and the classical edge-density selector, in and
//! out of distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use el_bench::{benchmark_dataset, trained_model};
use el_core::pipeline::edge_density_zones;
use el_core::{assess_zone, ElPipeline, FinalDecision, PipelineConfig};
use el_scene::Split;
use std::hint::black_box;

struct Tally {
    landed: usize,
    aborted: usize,
    fatal: usize,
    high_risk: usize,
    trials: usize,
    total: usize,
}

fn run_pipeline(config: PipelineConfig, split: Split) -> Tally {
    let ds = benchmark_dataset();
    let mut pipeline = ElPipeline::try_new(trained_model(), config).expect("valid config");
    let mut t = Tally {
        landed: 0,
        aborted: 0,
        fatal: 0,
        high_risk: 0,
        trials: 0,
        total: 0,
    };
    for (i, s) in ds.split(split).enumerate() {
        let outcome = pipeline.run(&s.image, 9000 + i as u64);
        t.total += 1;
        t.trials += outcome.trials.len();
        match outcome.decision {
            FinalDecision::Land(zone) => {
                t.landed += 1;
                let a = assess_zone(&s.labels, zone.rect);
                if a.fatal {
                    t.fatal += 1;
                }
                if a.contains_high_risk {
                    t.high_risk += 1;
                }
            }
            FinalDecision::Abort(_) => t.aborted += 1,
        }
    }
    t
}

fn print_tables() {
    eprintln!("\n===== F2: Figure 2 pipeline end-to-end (benchmark model) =====");
    eprintln!(
        "{:<24} {:<6} {:>6} {:>6} {:>6} {:>9} {:>7}",
        "pipeline", "split", "landed", "abort", "fatal", "high-risk", "trials"
    );
    for (name, config) in [
        ("monitored (25% tol)", PipelineConfig::benchmark()),
        ("unmonitored", PipelineConfig::benchmark().unmonitored()),
    ] {
        for split in [Split::Test, Split::Ood] {
            let t = run_pipeline(config.clone(), split);
            eprintln!(
                "{:<24} {:<6} {:>6} {:>6} {:>6} {:>9} {:>7}",
                name,
                format!("{split:?}"),
                t.landed,
                t.aborted,
                t.fatal,
                t.high_risk,
                t.trials
            );
        }
    }
    // Classical baseline: edge-density window selection, graded against
    // ground truth. Semantically blind — it happily proposes smooth
    // asphalt.
    let ds = benchmark_dataset();
    eprintln!("\nedge-density baseline (Mejias-style, semantically blind):");
    for split in [Split::Test, Split::Ood] {
        let mut fatal = 0;
        let mut high_risk = 0;
        let mut total = 0;
        for s in ds.split(split) {
            let zones = edge_density_zones(&s.image, &el_core::ZoneParams::default_urban());
            if let Some(z) = zones.first() {
                total += 1;
                let a = assess_zone(&s.labels, z.rect);
                if a.fatal {
                    fatal += 1;
                }
                if a.contains_high_risk {
                    high_risk += 1;
                }
            }
        }
        eprintln!("  {split:?}: {total} selections, {fatal} fatal, {high_risk} high-risk");
    }
    eprintln!(
        "shape check (paper): monitored pipeline must confirm zones in distribution and reject/abort under the OOD shift."
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let ds = benchmark_dataset();
    let sample = ds.split(Split::Test).next().unwrap();
    let mut monitored =
        ElPipeline::try_new(trained_model(), PipelineConfig::benchmark()).expect("valid config");
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("pipeline_run_256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(monitored.run(&sample.image, seed))
        })
    });
    group.bench_function("edge_density_zones_256", |b| {
        b.iter(|| {
            black_box(edge_density_zones(
                &sample.image,
                &el_core::ZoneParams::default_urban(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment T2: cross-validating the Table II ground-risk severity
//! registry with Monte-Carlo touchdown outcomes.
//!
//! The paper assigns severities to outcome classes analytically; here the
//! simulator drops UAVs on synthetic city terrain and the observed
//! touchdown severities are tabulated per terrain class, confirming the
//! registry's ordering (busy road > humans > infrastructure > open
//! ground).

use criterion::{criterion_group, criterion_main, Criterion};
use el_geom::Vec2;
use el_scene::{Scene, SceneParams};
use el_sora::hazard::Severity;
use el_uavsim::mission::touchdown_severity;
use el_uavsim::{ParachuteDescent, Wind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn print_table() {
    eprintln!("\n===== T2: touchdown severity by outcome (Monte-Carlo, 4000 drops) =====");
    let scene = Scene::generate(&SceneParams::default_urban(), 7);
    let mpp = scene.params.meters_per_pixel;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (w_m, h_m) = (scene.width() as f64 * mpp, scene.height() as f64 * mpp);
    // histogram[severity-1] for parachute and ballistic drops.
    let mut with_chute = [0usize; 5];
    let mut without = [0usize; 5];
    for _ in 0..4000 {
        let at = Vec2::new(rng.gen_range(0.0..w_m), rng.gen_range(0.0..h_m));
        with_chute[(touchdown_severity(&scene, at, true).rating() - 1) as usize] += 1;
        without[(touchdown_severity(&scene, at, false).rating() - 1) as usize] += 1;
    }
    eprintln!("severity                1     2     3     4     5");
    eprintln!(
        "with parachute (M2): {:>5} {:>5} {:>5} {:>5} {:>5}",
        with_chute[0], with_chute[1], with_chute[2], with_chute[3], with_chute[4]
    );
    eprintln!(
        "ballistic:           {:>5} {:>5} {:>5} {:>5} {:>5}",
        without[0], without[1], without[2], without[3], without[4]
    );
    // Paper Table II, §IV-A: M2 reduces the people-impact severity
    // (4 -> 2) but cannot touch the busy-road outcome (5 stays 5).
    assert_eq!(
        with_chute[4], without[4],
        "parachute must not change the catastrophic (R1) count"
    );
    assert!(
        with_chute[3] < without[3].max(1),
        "parachute must reduce severity-4 outcomes"
    );
    eprintln!(
        "M2 effect: severity-4 outcomes {} -> {} (paper: 4 -> 2 reduction), catastrophic unchanged",
        without[3], with_chute[3]
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let scene = Scene::generate(&SceneParams::default_urban(), 7);
    let wind = Wind::breeze(0.4);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    c.bench_function("uavsim/parachute_descent", |b| {
        b.iter(|| {
            let d = ParachuteDescent::canopy(120.0);
            black_box(d.touchdown(Vec2::new(60.0, 60.0), &wind, &mut rng))
        })
    });
    c.bench_function("uavsim/touchdown_severity", |b| {
        b.iter(|| black_box(touchdown_severity(&scene, Vec2::new(61.3, 58.2), true)))
    });
    // Keep the Severity type exercised under optimisation.
    c.bench_function("sora/severity_ordering", |b| {
        b.iter(|| {
            let mut worst = Severity::Negligible;
            for s in Severity::ALL {
                worst = worst.max(black_box(s));
            }
            worst
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment P3: the audit subsystem's performance profile.
//!
//! Two measurements anchor the audit PR:
//!
//! 1. **Batched deterministic tiling**: `segment_tiled` (tile groups
//!    through the stacked-GEMM engine — one column-stacked im2col GEMM
//!    per branch and one GEMM per 1x1 head for the whole group) versus
//!    `segment_tiled_reference` (one full engine pass per tile). Labels
//!    are bit-identical (asserted here and property-tested in el-seg), so
//!    this is a pure latency comparison.
//! 2. **Whole-frame audit cost**: what a given latency budget buys the
//!    post-decision sweep on top of an `ElPipeline` run — coverage per
//!    budget, and the decision path's latency with the audit on vs off
//!    (the decision itself must not get slower; the audit only spends
//!    the leftover budget).
//! 3. **Contract classes**: the audit GEMM under the approximate rungs
//!    versus the exact f32 path, at the shapes the audit's
//!    reduced-precision Monte-Carlo suffix actually runs (the two 1x1
//!    heads of the paper-default net over a 64x64 audit crop). This is
//!    the PR's acceptance measurement: the approximate audit GEMM must
//!    be at least 1.5x the exact path on the host tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use el_bench::trained_model;
use el_core::{AuditConfig, ElPipeline, PipelineConfig};
use el_scene::{Conditions, Scene, SceneParams};
use el_seg::{segment_tiled, segment_tiled_reference, TileConfig};
use std::hint::black_box;
use std::time::Instant;

fn frame(side: usize, seed: u64) -> el_scene::Image {
    let mut params = SceneParams::default_urban();
    params.width = side;
    params.height = side;
    Scene::generate(&params, seed).render(&Conditions::nominal(), seed)
}

fn print_tiled_eval_batching() {
    let net = trained_model();
    eprintln!("\n===== P3a: batched vs per-tile deterministic tiling =====");
    eprintln!(
        "{:>6} {:>6} {:>6} {:>15} {:>13} {:>9}",
        "frame", "tile", "tiles", "per-tile (ms)", "batched (ms)", "speedup"
    );
    for (side, tile, margin) in [(192usize, 32usize, 8usize), (256, 48, 8), (384, 64, 8)] {
        let img = frame(side, 31);
        let cfg = TileConfig { tile, margin };
        let tiles = el_seg::plan_tiles(side, side, cfg).len();
        // Bit-identity first: the comparison is meaningless otherwise.
        let a = segment_tiled_reference(&net, &img, cfg);
        let b = segment_tiled(&net, &img, cfg);
        assert_eq!(a, b, "batched tiler diverged from the reference");
        // Interleave and keep each side's best of 7: noise on a shared
        // box hits both alike, minima are the stable estimator.
        let mut per_tile = f64::INFINITY;
        let mut batched = f64::INFINITY;
        for _ in 0..7 {
            let t0 = Instant::now();
            black_box(segment_tiled_reference(&net, &img, cfg));
            per_tile = per_tile.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            black_box(segment_tiled(&net, &img, cfg));
            batched = batched.min(t0.elapsed().as_secs_f64());
        }
        eprintln!(
            "{:>6} {:>6} {:>6} {:>15.2} {:>13.2} {:>8.2}x",
            side,
            tile,
            tiles,
            per_tile * 1e3,
            batched * 1e3,
            per_tile / batched
        );
    }
}

fn print_audit_budget_profile() {
    let net = trained_model();
    eprintln!(
        "\n===== P3b: whole-frame audit — what a budget buys (128 px tiles, 5 samples) ====="
    );
    let img = frame(256, 17);
    // Decision latency, audit off.
    let mut plain =
        ElPipeline::try_new(net.clone(), PipelineConfig::benchmark()).expect("valid config");
    let _ = plain.run(&img, 42); // warm
    let mut decision_s = f64::INFINITY;
    for r in 0..5u64 {
        let t0 = Instant::now();
        black_box(plain.run(&img, 42 + r));
        decision_s = decision_s.min(t0.elapsed().as_secs_f64());
    }
    // Unlimited budget: the full sweep cost on top of the decision.
    let full_cfg = PipelineConfig::benchmark().with_audit(AuditConfig {
        budget_s: 1e9,
        ..AuditConfig::paper_scale()
    });
    let mut audited = ElPipeline::try_new(net.clone(), full_cfg).expect("valid config");
    let _ = audited.run(&img, 42);
    let t0 = Instant::now();
    let full = audited.run(&img, 42);
    let full_s = t0.elapsed().as_secs_f64();
    let report = full.audit.expect("audit enabled");
    assert!(report.is_complete());
    eprintln!(
        "decision only: {:.1} ms | decision + complete audit ({} tiles): {:.1} ms",
        decision_s * 1e3,
        report.tiles_total(),
        full_s * 1e3
    );
    eprintln!(
        "{:>12} {:>10} {:>10} {:>10}",
        "budget (ms)", "tiles", "coverage", "regions"
    );
    for frac in [0.25f64, 0.5, 1.0] {
        let budget = decision_s + (full_s - decision_s) * frac;
        let cfg = PipelineConfig::benchmark().with_audit(AuditConfig {
            budget_s: budget,
            ..AuditConfig::paper_scale()
        });
        let mut p = ElPipeline::try_new(net.clone(), cfg).expect("valid config");
        let out = p.run(&img, 42);
        let audit = out.audit.expect("audit enabled");
        eprintln!(
            "{:>12.1} {:>6}/{:<3} {:>9.0}% {:>10}",
            budget * 1e3,
            audit.tiles_verified(),
            audit.tiles_total(),
            audit.coverage() * 100.0,
            audit.regions.len()
        );
    }
}

/// P3c: the audit GEMM under each contract class. Shapes are the
/// stochastic-suffix GEMMs of `MsdNetConfig::default_uavid` on a 64x64
/// audit crop (`head1`: 32x48 @ 4096 columns, `head2`: 8x32 @ 4096) —
/// the only GEMMs an approximate [`el_kernels::KernelPolicy`] ever
/// routes. Rounds are interleaved and each side keeps its best so the
/// shared box's noise cancels out of the ratios.
fn print_contract_class_gemm() {
    use el_kernels::{ApproxRung, KernelPolicy};
    eprintln!("\n===== P3c: audit GEMM contract classes (exact vs approximate rungs) =====");
    let exact = KernelPolicy::exact()
        .resolve()
        .expect("exact resolves on every tier");
    let rungs: Vec<_> = [ApproxRung::F16, ApproxRung::Int8]
        .into_iter()
        .filter_map(|r| {
            KernelPolicy::approximate(r)
                .resolve()
                .ok()
                .map(|k| (r.name(), k))
        })
        .collect();
    if rungs.is_empty() {
        eprintln!("no approximate rungs on the active kernel tier, section skipped");
        return;
    }
    eprintln!(
        "{:>14} {:>12} {:>12} {:>8}",
        "shape", "contract", "best (us)", "speedup"
    );
    for (m, k_dim, n) in [(32usize, 48usize, 4096usize), (8, 32, 4096)] {
        let a: Vec<f32> = (0..m * k_dim)
            .map(|i| ((i * 37 % 100) as f32 - 50.0) / 53.0)
            .collect();
        let b: Vec<f32> = (0..k_dim * n)
            .map(|i| ((i * 91 % 100) as f32 - 50.0) / 47.0)
            .collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.01).collect();
        let mut out = vec![0.0f32; m * n];
        let reps = 30;
        let mut best = vec![f64::INFINITY; rungs.len() + 1];
        for _ in 0..9 {
            for (slot, kernels) in std::iter::once(&exact)
                .chain(rungs.iter().map(|(_, k)| k))
                .enumerate()
            {
                let t0 = Instant::now();
                for _ in 0..reps {
                    kernels.gemm_bias(&a, &b, &bias, black_box(&mut out), m, k_dim, n);
                }
                best[slot] = best[slot].min(t0.elapsed().as_secs_f64() / reps as f64);
            }
        }
        let shape = format!("{m}x{k_dim} @ {n}");
        eprintln!(
            "{:>14} {:>12} {:>12.1} {:>8}",
            shape,
            "exact",
            best[0] * 1e6,
            "1.00x"
        );
        for (i, (name, _)) in rungs.iter().enumerate() {
            eprintln!(
                "{:>14} {:>12} {:>12.1} {:>7.2}x",
                "",
                name,
                best[i + 1] * 1e6,
                best[0] / best[i + 1]
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_tiled_eval_batching();
    print_audit_budget_profile();
    print_contract_class_gemm();
    let net = trained_model();
    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    let img = frame(256, 31);
    let cfg = TileConfig {
        tile: 48,
        margin: 8,
    };
    group.bench_with_input(BenchmarkId::new("segment_tiled", 256), &img, |b, img| {
        b.iter(|| black_box(segment_tiled(&net, img, cfg)))
    });
    group.bench_with_input(
        BenchmarkId::new("segment_tiled_reference", 256),
        &img,
        |b, img| b.iter(|| black_box(segment_tiled_reference(&net, img, cfg))),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment P3: the audit subsystem's performance profile.
//!
//! Two measurements anchor the audit PR:
//!
//! 1. **Batched deterministic tiling**: `segment_tiled` (tile groups
//!    through the stacked-GEMM engine — one column-stacked im2col GEMM
//!    per branch and one GEMM per 1x1 head for the whole group) versus
//!    `segment_tiled_reference` (one full engine pass per tile). Labels
//!    are bit-identical (asserted here and property-tested in el-seg), so
//!    this is a pure latency comparison.
//! 2. **Whole-frame audit cost**: what a given latency budget buys the
//!    post-decision sweep on top of an `ElPipeline` run — coverage per
//!    budget, and the decision path's latency with the audit on vs off
//!    (the decision itself must not get slower; the audit only spends
//!    the leftover budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use el_bench::trained_model;
use el_core::{AuditConfig, ElPipeline, PipelineConfig};
use el_scene::{Conditions, Scene, SceneParams};
use el_seg::{segment_tiled, segment_tiled_reference, TileConfig};
use std::hint::black_box;
use std::time::Instant;

fn frame(side: usize, seed: u64) -> el_scene::Image {
    let mut params = SceneParams::default_urban();
    params.width = side;
    params.height = side;
    Scene::generate(&params, seed).render(&Conditions::nominal(), seed)
}

fn print_tiled_eval_batching() {
    let net = trained_model();
    eprintln!("\n===== P3a: batched vs per-tile deterministic tiling =====");
    eprintln!(
        "{:>6} {:>6} {:>6} {:>15} {:>13} {:>9}",
        "frame", "tile", "tiles", "per-tile (ms)", "batched (ms)", "speedup"
    );
    for (side, tile, margin) in [(192usize, 32usize, 8usize), (256, 48, 8), (384, 64, 8)] {
        let img = frame(side, 31);
        let cfg = TileConfig { tile, margin };
        let tiles = el_seg::plan_tiles(side, side, cfg).len();
        // Bit-identity first: the comparison is meaningless otherwise.
        let a = segment_tiled_reference(&net, &img, cfg);
        let b = segment_tiled(&net, &img, cfg);
        assert_eq!(a, b, "batched tiler diverged from the reference");
        // Interleave and keep each side's best of 7: noise on a shared
        // box hits both alike, minima are the stable estimator.
        let mut per_tile = f64::INFINITY;
        let mut batched = f64::INFINITY;
        for _ in 0..7 {
            let t0 = Instant::now();
            black_box(segment_tiled_reference(&net, &img, cfg));
            per_tile = per_tile.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            black_box(segment_tiled(&net, &img, cfg));
            batched = batched.min(t0.elapsed().as_secs_f64());
        }
        eprintln!(
            "{:>6} {:>6} {:>6} {:>15.2} {:>13.2} {:>8.2}x",
            side,
            tile,
            tiles,
            per_tile * 1e3,
            batched * 1e3,
            per_tile / batched
        );
    }
}

fn print_audit_budget_profile() {
    let net = trained_model();
    eprintln!(
        "\n===== P3b: whole-frame audit — what a budget buys (128 px tiles, 5 samples) ====="
    );
    let img = frame(256, 17);
    // Decision latency, audit off.
    let mut plain =
        ElPipeline::try_new(net.clone(), PipelineConfig::benchmark()).expect("valid config");
    let _ = plain.run(&img, 42); // warm
    let mut decision_s = f64::INFINITY;
    for r in 0..5u64 {
        let t0 = Instant::now();
        black_box(plain.run(&img, 42 + r));
        decision_s = decision_s.min(t0.elapsed().as_secs_f64());
    }
    // Unlimited budget: the full sweep cost on top of the decision.
    let full_cfg = PipelineConfig::benchmark().with_audit(AuditConfig {
        budget_s: 1e9,
        ..AuditConfig::paper_scale()
    });
    let mut audited = ElPipeline::try_new(net.clone(), full_cfg).expect("valid config");
    let _ = audited.run(&img, 42);
    let t0 = Instant::now();
    let full = audited.run(&img, 42);
    let full_s = t0.elapsed().as_secs_f64();
    let report = full.audit.expect("audit enabled");
    assert!(report.is_complete());
    eprintln!(
        "decision only: {:.1} ms | decision + complete audit ({} tiles): {:.1} ms",
        decision_s * 1e3,
        report.tiles_total(),
        full_s * 1e3
    );
    eprintln!(
        "{:>12} {:>10} {:>10} {:>10}",
        "budget (ms)", "tiles", "coverage", "regions"
    );
    for frac in [0.25f64, 0.5, 1.0] {
        let budget = decision_s + (full_s - decision_s) * frac;
        let cfg = PipelineConfig::benchmark().with_audit(AuditConfig {
            budget_s: budget,
            ..AuditConfig::paper_scale()
        });
        let mut p = ElPipeline::try_new(net.clone(), cfg).expect("valid config");
        let out = p.run(&img, 42);
        let audit = out.audit.expect("audit enabled");
        eprintln!(
            "{:>12.1} {:>6}/{:<3} {:>9.0}% {:>10}",
            budget * 1e3,
            audit.tiles_verified(),
            audit.tiles_total(),
            audit.coverage() * 100.0,
            audit.regions.len()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_tiled_eval_batching();
    print_audit_budget_profile();
    let net = trained_model();
    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    let img = frame(256, 31);
    let cfg = TileConfig {
        tile: 48,
        margin: 8,
    };
    group.bench_with_input(BenchmarkId::new("segment_tiled", 256), &img, |b, img| {
        b.iter(|| black_box(segment_tiled(&net, img, cfg)))
    });
    group.bench_with_input(
        BenchmarkId::new("segment_tiled_reference", 256),
        &img,
        |b, img| b.iter(|| black_box(segment_tiled_reference(&net, img, cfg))),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

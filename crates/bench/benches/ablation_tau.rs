//! Experiment A1: the tau = 0.125 threshold choice.
//!
//! The paper picks tau = 0.125 = 1/8 "to make sure that the road score is
//! lower than a random guess" over the eight UAVid classes. This ablation
//! sweeps tau and traces the monitor's operating curve: dangerous-miss
//! coverage (safety) against false-alarm rate (availability), in and out
//! of distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use el_bench::{benchmark_dataset, trained_model};
use el_monitor::{bayesian_segment, BayesStats, MonitorQuality, MonitorRule};
use el_scene::{Sample, Split};
use el_seg::segment;
use std::hint::black_box;

/// Precomputed per-sample statistics so the sweep reuses the expensive
/// Bayesian passes.
fn precompute(split: Split) -> Vec<(Sample, el_geom::Grid<bool>, BayesStats)> {
    let ds = benchmark_dataset();
    let mut net = trained_model();
    ds.split(split)
        .map(|s| {
            let core = segment(&mut net, &s.image);
            let core_safe = core.labels.map(|c| !c.is_busy_road());
            let stats = bayesian_segment(&net, &s.image, 10, 42);
            (s.clone(), core_safe, stats)
        })
        .collect()
}

fn sweep(split: Split, data: &[(Sample, el_geom::Grid<bool>, BayesStats)]) {
    eprintln!("-- split {split:?} --");
    eprintln!(
        "{:>8} {:>14} {:>12} {:>14}",
        "tau", "miss-coverage", "false-alarm", "road-recall"
    );
    for tau in [0.02f32, 0.05, 0.08, 0.125, 0.2, 0.3, 0.5] {
        let rule = MonitorRule {
            tau,
            sigma_factor: 3.0,
        };
        let mut q = MonitorQuality::default();
        for (sample, core_safe, stats) in data {
            q.accumulate(&sample.labels, core_safe, &rule.warning_map(stats));
        }
        let mark = if (tau - 0.125).abs() < 1e-6 {
            "  <- paper"
        } else {
            ""
        };
        eprintln!(
            "{:>8.3} {:>14.3} {:>12.3} {:>14.3}{}",
            tau,
            q.miss_coverage().unwrap_or(f64::NAN),
            q.false_alarm_rate().unwrap_or(f64::NAN),
            q.road_warning_recall().unwrap_or(f64::NAN),
            mark
        );
    }
}

fn print_tables() {
    eprintln!("\n===== A1: tau sweep (paper: tau = 0.125 = 1/8 classes) =====");
    let test = precompute(Split::Test);
    let ood = precompute(Split::Ood);
    sweep(Split::Test, &test);
    sweep(Split::Ood, &ood);
    eprintln!(
        "reading: smaller tau -> more coverage and more false alarms; tau=1/8 keeps the road score below a uniform guess."
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let data = precompute(Split::Test);
    let (_, _, stats) = &data[0];
    let rule = MonitorRule::paper();
    c.bench_function("monitor/warning_map_256", |b| {
        b.iter(|| black_box(rule.warning_map(stats)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment P2: batched multi-zone verification and budgeted tiled
//! Bayesian inference — the scaling measurements behind the batch engine.
//!
//! Two tables anchor the PR's performance claims:
//!
//! 1. **Batch-size scaling**: `Monitor::verify_batch` over N candidate
//!    crops versus N sequential `Monitor::verify` calls (the per-crop
//!    results are bit-identical — `tests/batch_bayes.rs` — so this is a
//!    pure latency comparison). The batch path amortises the prefix
//!    convolutions into single column-stacked GEMMs, runs every sample's
//!    head GEMMs once for the whole batch, shares one scratch arena, and
//!    drains all crops' Monte-Carlo chunks through one rayon work queue.
//! 2. **Tile-count scaling**: `bayesian_segment_tiled` over a full frame,
//!    with per-tile cost and the coverage a given latency budget buys —
//!    the paper's §V-B argument made incremental.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use el_bench::trained_model;
use el_geom::Rect;
use el_monitor::{bayesian_segment_tiled, Monitor, MonitorConfig, BATCH_SEED_STRIDE};
use el_scene::{Conditions, Scene, SceneParams};
use el_seg::TileConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A candidate-zone-sized crop (the paper config's zone plus monitor
/// margin lands in this range).
fn crops(n: usize, side: usize) -> Vec<el_scene::Image> {
    (0..n)
        .map(|i| {
            let mut params = SceneParams::default_urban();
            params.width = side;
            params.height = side;
            let scene = Scene::generate(&params, 23 + i as u64);
            scene.render(&Conditions::nominal(), 5 + i as u64)
        })
        .collect()
}

fn frame(side: usize) -> el_scene::Image {
    let mut params = SceneParams::default_urban();
    params.width = side;
    params.height = side;
    Scene::generate(&params, 41).render(&Conditions::nominal(), 7)
}

fn print_batch_scaling() {
    let net = trained_model();
    let monitor = Monitor::new(MonitorConfig::paper());
    eprintln!("\n===== P2a: verify_batch vs N sequential verify (10 samples, 48x48 crops) =====");
    eprintln!(
        "{:>6} {:>16} {:>14} {:>9}",
        "crops", "sequential (s)", "batch (s)", "speedup"
    );
    for n in [1usize, 2, 4, 8] {
        let images = crops(n, 48);
        // Warm both paths (model load, first-touch buffers).
        let _ = monitor.verify(&net, &images[0], 1);
        let _ = monitor.verify_batch(&net, &images, 1);
        // Interleave and keep each side's best of 9: noise on a shared
        // box hits both alike, minima are the stable estimator.
        let reps = 9;
        let mut seq = f64::INFINITY;
        let mut batch = f64::INFINITY;
        for r in 0..reps as u64 {
            let t0 = Instant::now();
            for (i, img) in images.iter().enumerate() {
                let seed = (42 + r).wrapping_add((i as u64 + 1).wrapping_mul(BATCH_SEED_STRIDE));
                black_box(monitor.verify(&net, img, seed));
            }
            seq = seq.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            black_box(monitor.verify_batch(&net, &images, 42 + r));
            batch = batch.min(t0.elapsed().as_secs_f64());
        }
        eprintln!(
            "{:>6} {:>16.4} {:>14.4} {:>8.2}x",
            n,
            seq,
            batch,
            seq / batch
        );
    }
}

fn print_tile_scaling() {
    let net = trained_model();
    let config = TileConfig::default_128();
    eprintln!("\n===== P2b: budgeted tiled Bayesian inference (10 samples, 128 px tiles) =====");
    eprintln!(
        "{:>6} {:>6} {:>13} {:>13} {:>10}",
        "frame", "tiles", "full (s)", "s per tile", "cov@50%"
    );
    for side in [256usize, 384] {
        let img = frame(side);
        let t0 = Instant::now();
        let full =
            bayesian_segment_tiled(&net, &img, config, 10, 42, Duration::from_secs(86_400), &[]);
        let full_s = t0.elapsed().as_secs_f64();
        assert!(full.is_complete());
        // What does half the budget buy? (Real wall clock.)
        let half = bayesian_segment_tiled(
            &net,
            &img,
            config,
            10,
            42,
            Duration::from_secs_f64(full_s / 2.0),
            &[],
        );
        eprintln!(
            "{:>6} {:>6} {:>13.3} {:>13.3} {:>9.0}%",
            side,
            full.tiles_total,
            full_s,
            full_s / full.tiles_total as f64,
            half.coverage() * 100.0
        );
    }
    eprintln!(
        "partial coverage is exact where covered (bit-identical to the whole frame) \
         and candidate-zone tiles go first — see tests/batch_bayes.rs."
    );
}

fn bench(c: &mut Criterion) {
    print_batch_scaling();
    print_tile_scaling();
    let net = trained_model();
    let monitor = Monitor::new(MonitorConfig::paper());
    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    for n in [1usize, 4] {
        let images = crops(n, 48);
        group.bench_with_input(BenchmarkId::new("verify_batch", n), &images, |b, imgs| {
            b.iter(|| black_box(monitor.verify_batch(&net, imgs, 42)))
        });
    }
    let img = frame(256);
    group.bench_with_input(BenchmarkId::new("tiled_full_frame", 256), &img, |b, img| {
        b.iter(|| {
            black_box(bayesian_segment_tiled(
                &net,
                img,
                TileConfig::default_128(),
                10,
                42,
                Duration::from_secs(86_400),
                &[Rect::new(64, 64, 33, 33)],
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

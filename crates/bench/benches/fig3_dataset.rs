//! Experiment F3: the synthetic UAVid-like dataset — class distribution
//! and rendering statistics (the stand-in for the paper's Figure 3
//! dataset description).

use criterion::{criterion_group, criterion_main, Criterion};
use el_bench::benchmark_dataset;
use el_geom::SemanticClass;
use el_scene::render::channel_means;
use el_scene::{Conditions, Scene, SceneParams, Split};
use std::hint::black_box;

fn print_tables() {
    let ds = benchmark_dataset();
    eprintln!("\n===== F3: synthetic dataset class distribution (per split) =====");
    eprintln!("{:<16} {:>8} {:>8} {:>8}", "class", "train", "test", "ood");
    let train = ds.class_fractions(Split::Train);
    let test = ds.class_fractions(Split::Test);
    let ood = ds.class_fractions(Split::Ood);
    for c in SemanticClass::ALL {
        eprintln!(
            "{:<16} {:>7.3}% {:>7.3}% {:>7.3}%",
            c.name(),
            100.0 * train[c.index()],
            100.0 * test[c.index()],
            100.0 * ood[c.index()]
        );
    }
    let weights = ds.train_class_weights();
    eprintln!("inverse-frequency class weights (training):");
    for c in SemanticClass::ALL {
        eprintln!("  {:<16} {:.3}", c.name(), weights[c.index()]);
    }
    // Rendering shift: channel means nominal vs sunset (the OOD shift).
    let scene = Scene::generate(&SceneParams::default_urban(), 3);
    let nominal = channel_means(&scene.render(&Conditions::nominal(), 5));
    let sunset = channel_means(&scene.render(&Conditions::sunset(), 5));
    eprintln!(
        "channel means nominal  R {:.3} G {:.3} B {:.3}",
        nominal[0], nominal[1], nominal[2]
    );
    eprintln!(
        "channel means sunset   R {:.3} G {:.3} B {:.3}  (warm shift: B drops most)",
        sunset[0], sunset[1], sunset[2]
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let params = SceneParams::default_urban();
    c.bench_function("scene/generate_256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(Scene::generate(&params, seed))
        })
    });
    let scene = Scene::generate(&params, 11);
    c.bench_function("scene/render_256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(scene.render(&Conditions::nominal(), seed))
        })
    });
    c.bench_function("scene/busy_road_mask", |b| {
        b.iter(|| black_box(scene.busy_road()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment F1: the Figure 1 safety-switch architecture under
//! Monte-Carlo failure injection.
//!
//! Regenerates the maneuver-routing distribution (which hazard ends in
//! which maneuver) and the outcome comparison across EL policies — the
//! closed-loop justification for installing EL at all.

use criterion::{criterion_group, criterion_main, Criterion};
use el_scene::SceneParams;
use el_uavsim::{
    Campaign, CampaignConfig, FailureRates, Mission, MissionConfig, NoEl, NoisyEl, PerfectEl, Wind,
};
use std::hint::black_box;

fn campaign_config(missions: usize) -> CampaignConfig {
    let mut config = CampaignConfig::small_test(missions);
    config.mission = MissionConfig::medi_delivery(1);
    config.mission.scene_params = SceneParams::default_urban();
    config.mission.duration_s = 240.0;
    config.mission.view_radius_m = 80.0;
    config.mission.wind = Wind {
        mean_speed_mps: 1.5,
        direction_rad: 0.7,
        gust_std_mps: 0.5,
    };
    config
}

fn print_tables() {
    eprintln!("\n===== F1: safety-switch campaign (400 missions per policy) =====");
    let config = campaign_config(400);
    let clearance_m = 16.2; // from the drift model at 1.5 m/s (see examples/failure_campaign)

    let mut no_el_cfg = config.clone();
    no_el_cfg.mission.el_installed = false;
    let mut degraded = NoisyEl::degraded();
    degraded.inner.clearance_m = clearance_m;

    let runs = [
        (
            "no-EL",
            Campaign::try_new(no_el_cfg)
                .expect("valid config")
                .run(&mut NoEl),
        ),
        (
            "unmonitored-degraded-EL",
            Campaign::try_new(config.clone())
                .expect("valid config")
                .run(&mut degraded),
        ),
        (
            "oracle-EL",
            Campaign::try_new(config)
                .expect("valid config")
                .run(&mut PerfectEl { clearance_m }),
        ),
    ];
    eprintln!(
        "{:<26} {:>5} {:>5} {:>7} {:>5} | severity 1..5 | fatal% cat%",
        "policy", "done", "RTB", "EL-land", "FT"
    );
    for (name, r) in &runs {
        eprintln!(
            "{:<26} {:>5} {:>5} {:>7} {:>5} | {:>3} {:>3} {:>3} {:>3} {:>3} | {:>5.2} {:>5.2}",
            name,
            r.completed,
            r.returned_to_base,
            r.landed_el,
            r.terminated,
            r.severity_histogram[0],
            r.severity_histogram[1],
            r.severity_histogram[2],
            r.severity_histogram[3],
            r.severity_histogram[4],
            100.0 * r.fatal_fraction(),
            100.0 * r.catastrophic_fraction(),
        );
    }
    eprintln!("maneuver engagement fractions (H/RB/EL/FT):");
    for (name, r) in &runs {
        let f = r.maneuver_fractions();
        eprintln!(
            "{:<26} {:.2} / {:.2} / {:.2} / {:.2}",
            name, f[0], f[1], f[2], f[3]
        );
    }
    let no_el = &runs[0].1;
    let oracle = &runs[2].1;
    eprintln!(
        "shape check: oracle-EL catastrophic {:.2}% <= no-EL {:.2}% (paper: EL reduces people at risk)",
        100.0 * oracle.catastrophic_fraction(),
        100.0 * no_el.catastrophic_fraction()
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let config = campaign_config(1);
    let mission = Mission::new(config.mission.clone());
    let mut el = PerfectEl { clearance_m: 16.2 };
    let mut seed = 0u64;
    c.bench_function("uavsim/single_mission", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(mission.run(&mut el, seed))
        })
    });
    let mut rates_rng = 0u64;
    c.bench_function("uavsim/failure_sampling", |b| {
        use rand::SeedableRng;
        b.iter(|| {
            rates_rng = rates_rng.wrapping_add(1);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(rates_rng);
            let injector = el_uavsim::FailureInjector::new(FailureRates::stress());
            black_box(injector.sample_events(600.0, &mut rng))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

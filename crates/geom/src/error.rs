//! Error type for geometry and raster operations.

use std::fmt;

use crate::rect::Rect;

/// Errors produced by fallible geometry/raster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A buffer's length did not match the requested grid shape.
    SizeMismatch {
        /// `width * height` expected by the constructor.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// Two grids that must share a shape did not.
    ShapeMismatch {
        /// Shape of the first operand.
        a: (usize, usize),
        /// Shape of the second operand.
        b: (usize, usize),
    },
    /// A rectangle fell (partly) outside a grid.
    OutOfBounds {
        /// The offending rectangle.
        rect: Rect,
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match grid size {expected}"
                )
            }
            GeomError::ShapeMismatch { a, b } => {
                write!(f, "grid shapes {}x{} and {}x{} differ", a.0, a.1, b.0, b.1)
            }
            GeomError::OutOfBounds {
                rect,
                width,
                height,
            } => write!(f, "rect {rect} not contained in {width}x{height} grid"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeomError::SizeMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("length 3"));
        let e = GeomError::ShapeMismatch {
            a: (1, 2),
            b: (3, 4),
        };
        assert!(e.to_string().contains("1x2"));
        let e = GeomError::OutOfBounds {
            rect: Rect::new(0, 0, 5, 5),
            width: 3,
            height: 3,
        };
        assert!(e.to_string().contains("3x3"));
    }
}

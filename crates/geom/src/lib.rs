//! Imaging and geometry substrate for the certel emergency-landing stack.
//!
//! This crate provides the pixel-space primitives shared by every layer of
//! the reproduction of *Certifying Emergency Landing for Safe Urban UAV*
//! (Guerin, Delmas, Guiochet — DSN 2021):
//!
//! - [`Grid`]: a generic dense 2-D raster used for images, label maps,
//!   score maps and masks.
//! - [`Point`] / [`Vec2`] / [`Rect`]: integer pixel coordinates, continuous
//!   2-D vectors and axis-aligned rectangles.
//! - [`SemanticClass`] / [`LabelMap`]: the eight UAVid semantic classes the
//!   paper's segmentation model predicts, and dense per-pixel label maps.
//! - [`distance`]: an exact Euclidean distance transform, the workhorse
//!   behind "select an area far from busy roads".
//! - [`components`]: connected-component labelling for candidate-zone
//!   extraction.
//! - [`morph`]: binary dilation/erosion used for safety buffers.
//! - [`draw`]: rasterisation helpers used by the procedural scene generator.
//!
//! # Example
//!
//! ```
//! use el_geom::{Grid, SemanticClass, distance::distance_from};
//!
//! // A 64x64 scene that is all grass except for a vertical road.
//! let labels = Grid::from_fn(64, 64, |x, _y| {
//!     if (30..34).contains(&x) { SemanticClass::Road } else { SemanticClass::LowVegetation }
//! });
//! // Distance (in pixels) from the nearest road pixel.
//! let dist = distance_from(&labels, |c| c == SemanticClass::Road);
//! assert_eq!(dist[(32, 10)], 0.0);
//! assert!(dist[(0, 10)] > 25.0);
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod components;
pub mod distance;
pub mod draw;
pub mod error;
pub mod grid;
pub mod label;
pub mod morph;
pub mod point;
pub mod rect;
pub mod transform;

pub use components::{label_components, Component, ComponentLabels};
pub use error::GeomError;
pub use grid::Grid;
pub use label::{LabelMap, SemanticClass};
pub use point::{Point, Vec2};
pub use rect::Rect;

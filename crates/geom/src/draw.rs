//! Rasterisation helpers for the procedural scene generator.
//!
//! These primitives draw *values* into a [`Grid`] — typically a
//! [`SemanticClass`](crate::SemanticClass) into a label map. All drawing is
//! clipped to the grid bounds.

use crate::grid::Grid;
use crate::point::{Point, Vec2};
use crate::rect::Rect;

/// Fills the (clipped) rectangle with copies of `value`.
pub fn fill_rect<T: Clone>(grid: &mut Grid<T>, rect: Rect, value: T) {
    let clip = grid.bounds().intersect(rect);
    for y in clip.y..clip.bottom() {
        for x in clip.x..clip.right() {
            grid[(x as usize, y as usize)] = value.clone();
        }
    }
}

/// Fills a disk of the given centre and radius (pixel-centre metric).
pub fn fill_circle<T: Clone>(grid: &mut Grid<T>, center: Point, radius: f64, value: T) {
    if radius < 0.0 {
        return;
    }
    let r = radius.ceil() as i64;
    let bbox = Rect::new(center.x - r, center.y - r, 2 * r + 1, 2 * r + 1);
    let clip = grid.bounds().intersect(bbox);
    let r2 = radius * radius;
    for y in clip.y..clip.bottom() {
        for x in clip.x..clip.right() {
            let dx = (x - center.x) as f64;
            let dy = (y - center.y) as f64;
            if dx * dx + dy * dy <= r2 + 1e-9 {
                grid[(x as usize, y as usize)] = value.clone();
            }
        }
    }
}

/// Draws a 1-pixel-wide line segment using Bresenham's algorithm.
pub fn draw_line<T: Clone>(grid: &mut Grid<T>, a: Point, b: Point, value: T) {
    let (mut x0, mut y0) = (a.x, a.y);
    let (x1, y1) = (b.x, b.y);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        grid.set_clipped(Point::new(x0, y0), value.clone());
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Draws a thick line segment (a capsule: every pixel within
/// `half_width` of the segment `a`–`b`).
///
/// This is the primitive used to rasterise roads of a given width.
pub fn fill_capsule<T: Clone>(grid: &mut Grid<T>, a: Vec2, b: Vec2, half_width: f64, value: T) {
    if half_width < 0.0 {
        return;
    }
    let r = half_width.ceil() as i64 + 1;
    let min_x = a.x.min(b.x).floor() as i64 - r;
    let min_y = a.y.min(b.y).floor() as i64 - r;
    let max_x = a.x.max(b.x).ceil() as i64 + r;
    let max_y = a.y.max(b.y).ceil() as i64 + r;
    let bbox = Rect::new(min_x, min_y, max_x - min_x + 1, max_y - min_y + 1);
    let clip = grid.bounds().intersect(bbox);
    let ab = b - a;
    let len2 = ab.norm_sq();
    let hw2 = half_width * half_width;
    for y in clip.y..clip.bottom() {
        for x in clip.x..clip.right() {
            let p = Vec2::new(x as f64, y as f64);
            let t = if len2 == 0.0 {
                0.0
            } else {
                ((p - a).dot(ab) / len2).clamp(0.0, 1.0)
            };
            let closest = a.lerp(b, t);
            if (p - closest).norm_sq() <= hw2 + 1e-9 {
                grid[(x as usize, y as usize)] = value.clone();
            }
        }
    }
}

/// Fills a simple polygon given by its vertices using even-odd scanline
/// filling. The polygon is closed implicitly (last vertex connects to the
/// first). Degenerate polygons (< 3 vertices) draw nothing.
pub fn fill_polygon<T: Clone>(grid: &mut Grid<T>, vertices: &[Vec2], value: T) {
    if vertices.len() < 3 {
        return;
    }
    let min_y = vertices.iter().map(|v| v.y).fold(f64::INFINITY, f64::min);
    let max_y = vertices
        .iter()
        .map(|v| v.y)
        .fold(f64::NEG_INFINITY, f64::max);
    let y0 = (min_y.floor() as i64).max(0);
    let y1 = (max_y.ceil() as i64).min(grid.height() as i64 - 1);
    let n = vertices.len();
    let mut xs: Vec<f64> = Vec::with_capacity(n);
    for y in y0..=y1 {
        let yc = y as f64;
        xs.clear();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            // Half-open rule avoids double counting at shared vertices.
            if (a.y <= yc && b.y > yc) || (b.y <= yc && a.y > yc) {
                let t = (yc - a.y) / (b.y - a.y);
                xs.push(a.x + t * (b.x - a.x));
            }
        }
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        for pair in xs.chunks_exact(2) {
            let x0 = (pair[0].ceil() as i64).max(0);
            let x1 = (pair[1].floor() as i64).min(grid.width() as i64 - 1);
            for x in x0..=x1 {
                grid[(x as usize, y as usize)] = value.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_clips() {
        let mut g = Grid::new(4, 4, 0);
        fill_rect(&mut g, Rect::new(2, 2, 10, 10), 1);
        assert_eq!(g.count(|&v| v == 1), 4);
        fill_rect(&mut g, Rect::new(-5, -5, 6, 6), 2);
        assert_eq!(g[(0, 0)], 2);
        assert_eq!(g.count(|&v| v == 2), 1);
    }

    #[test]
    fn circle_radius_zero_is_single_pixel() {
        let mut g = Grid::new(5, 5, 0);
        fill_circle(&mut g, Point::new(2, 2), 0.0, 1);
        assert_eq!(g.count(|&v| v == 1), 1);
        assert_eq!(g[(2, 2)], 1);
    }

    #[test]
    fn circle_matches_metric() {
        let mut g = Grid::new(11, 11, false);
        fill_circle(&mut g, Point::new(5, 5), 3.0, true);
        for (p, &b) in g.enumerate() {
            let d = (((p.x - 5).pow(2) + (p.y - 5).pow(2)) as f64).sqrt();
            assert_eq!(b, d <= 3.0 + 1e-9, "at {p}");
        }
    }

    #[test]
    fn line_endpoints_and_connectivity() {
        let mut g = Grid::new(10, 10, false);
        draw_line(&mut g, Point::new(1, 1), Point::new(8, 5), true);
        assert!(g[(1, 1)]);
        assert!(g[(8, 5)]);
        // Every drawn pixel has an 8-neighbour also drawn (connectivity).
        let pts: Vec<_> = g.enumerate().filter(|(_, &b)| b).map(|(p, _)| p).collect();
        assert!(pts.len() >= 8);
        for p in &pts {
            if *p == Point::new(1, 1) || *p == Point::new(8, 5) {
                continue;
            }
            assert!(
                p.neighbours8()
                    .iter()
                    .filter(|n| g.get(**n) == Some(&true))
                    .count()
                    >= 2,
                "line broken at {p}"
            );
        }
    }

    #[test]
    fn line_clips_outside() {
        let mut g = Grid::new(4, 4, false);
        draw_line(&mut g, Point::new(-3, 1), Point::new(7, 1), true);
        assert_eq!(g.count(|&b| b), 4);
    }

    #[test]
    fn capsule_covers_segment_width() {
        let mut g = Grid::new(20, 10, false);
        fill_capsule(&mut g, Vec2::new(3.0, 5.0), Vec2::new(16.0, 5.0), 1.5, true);
        assert!(g[(10, 5)]);
        assert!(g[(10, 4)]);
        assert!(g[(10, 6)]);
        assert!(!g[(10, 8)]);
        // Rounded caps.
        assert!(g[(2, 5)]);
        assert!(!g[(0, 5)]);
    }

    #[test]
    fn capsule_degenerate_is_disk() {
        let mut g = Grid::new(9, 9, false);
        fill_capsule(&mut g, Vec2::new(4.0, 4.0), Vec2::new(4.0, 4.0), 2.0, true);
        let mut disk = Grid::new(9, 9, false);
        fill_circle(&mut disk, Point::new(4, 4), 2.0, true);
        assert_eq!(g, disk);
    }

    #[test]
    fn polygon_square() {
        let mut g = Grid::new(10, 10, false);
        let verts = [
            Vec2::new(2.0, 2.0),
            Vec2::new(7.0, 2.0),
            Vec2::new(7.0, 7.0),
            Vec2::new(2.0, 7.0),
        ];
        fill_polygon(&mut g, &verts, true);
        assert!(g[(4, 4)]);
        assert!(g[(2, 2)]);
        assert!(!g[(8, 4)]);
        assert!(!g[(1, 4)]);
    }

    #[test]
    fn polygon_triangle_and_degenerate() {
        let mut g = Grid::new(12, 12, false);
        fill_polygon(
            &mut g,
            &[
                Vec2::new(1.0, 1.0),
                Vec2::new(10.0, 1.0),
                Vec2::new(1.0, 10.0),
            ],
            true,
        );
        assert!(g[(2, 2)]);
        assert!(!g[(9, 9)]);

        let mut g2 = Grid::new(5, 5, false);
        fill_polygon(&mut g2, &[Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0)], true);
        assert_eq!(g2.count(|&b| b), 0);
    }
}

//! Axis-aligned rectangles in pixel space.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An axis-aligned rectangle: origin `(x, y)` plus size `(w, h)`.
///
/// The rectangle covers pixels `x..x+w` by `y..y+h` (half-open). A rectangle
/// with zero width or height is *empty* and contains no pixel.
///
/// # Example
///
/// ```
/// use el_geom::{Point, Rect};
/// let r = Rect::new(2, 3, 4, 5);
/// assert!(r.contains(Point::new(2, 3)));
/// assert!(!r.contains(Point::new(6, 3))); // half-open
/// assert_eq!(r.area(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Leftmost column.
    pub x: i64,
    /// Topmost row.
    pub y: i64,
    /// Width in pixels.
    pub w: i64,
    /// Height in pixels.
    pub h: i64,
}

impl Rect {
    /// Creates a rectangle from origin and size.
    ///
    /// Negative sizes are clamped to zero, producing an empty rectangle.
    #[inline]
    pub fn new(x: i64, y: i64, w: i64, h: i64) -> Self {
        Rect {
            x,
            y,
            w: w.max(0),
            h: h.max(0),
        }
    }

    /// Creates a rectangle spanning two corner points (inclusive of the
    /// min corner, exclusive of `max + (1,1)`); the points may be given in
    /// any order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        let x0 = a.x.min(b.x);
        let y0 = a.y.min(b.y);
        let x1 = a.x.max(b.x);
        let y1 = a.y.max(b.y);
        Rect::new(x0, y0, x1 - x0 + 1, y1 - y0 + 1)
    }

    /// Creates a square rectangle centred (as nearly as possible) on `c`.
    #[inline]
    pub fn centered_square(c: Point, side: i64) -> Self {
        Rect::new(c.x - side / 2, c.y - side / 2, side, side)
    }

    /// `true` if the rectangle contains no pixel.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Number of pixels covered.
    #[inline]
    pub fn area(self) -> i64 {
        self.w * self.h
    }

    /// Exclusive right edge (`x + w`).
    #[inline]
    pub fn right(self) -> i64 {
        self.x + self.w
    }

    /// Exclusive bottom edge (`y + h`).
    #[inline]
    pub fn bottom(self) -> i64 {
        self.y + self.h
    }

    /// Centre of the rectangle, rounded towards the top-left.
    #[inline]
    pub fn center(self) -> Point {
        Point::new(self.x + self.w / 2, self.y + self.h / 2)
    }

    /// Top-left corner.
    #[inline]
    pub fn top_left(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// `true` if `p` lies inside the rectangle.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// `true` if `other` is entirely inside `self`.
    ///
    /// An empty rectangle is contained in everything.
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        other.is_empty()
            || (other.x >= self.x
                && other.y >= self.y
                && other.right() <= self.right()
                && other.bottom() <= self.bottom())
    }

    /// Intersection of two rectangles (possibly empty).
    #[inline]
    pub fn intersect(self, other: Rect) -> Rect {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// `true` if the two rectangles share at least one pixel.
    #[inline]
    pub fn intersects(self, other: Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Smallest rectangle containing both operands.
    ///
    /// Empty operands are ignored; the union of two empty rectangles is
    /// empty.
    #[inline]
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.right().max(other.right());
        let y1 = self.bottom().max(other.bottom());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Grows the rectangle by `margin` pixels on every side.
    ///
    /// A negative margin shrinks it (clamping at empty).
    #[inline]
    pub fn inflate(self, margin: i64) -> Rect {
        Rect::new(
            self.x - margin,
            self.y - margin,
            self.w + 2 * margin,
            self.h + 2 * margin,
        )
    }

    /// Translates the rectangle by `delta`.
    #[inline]
    pub fn translate(self, delta: Point) -> Rect {
        Rect::new(self.x + delta.x, self.y + delta.y, self.w, self.h)
    }

    /// The covering rectangle in a coarser grid of `cell × cell` pixel
    /// blocks: every cell this rectangle touches, even partially, in
    /// cell coordinates. Rasterising a pixel-space footprint onto a
    /// coarse accumulation grid is exactly this plus a per-cell
    /// [`Rect::intersect`] for the overlap area.
    ///
    /// Uses floor/ceiling division, so footprints at negative
    /// coordinates raster correctly. An empty rectangle stays empty.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive.
    #[inline]
    pub fn downscale(self, cell: i64) -> Rect {
        assert!(cell > 0, "downscale cell size must be positive");
        if self.is_empty() {
            return Rect::new(self.x.div_euclid(cell), self.y.div_euclid(cell), 0, 0);
        }
        let x0 = self.x.div_euclid(cell);
        let y0 = self.y.div_euclid(cell);
        // Ceiling division of the exclusive edges.
        let x1 = (self.right() + cell - 1).div_euclid(cell);
        let y1 = (self.bottom() + cell - 1).div_euclid(cell);
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Iterates over every pixel in row-major order.
    pub fn pixels(self) -> impl Iterator<Item = Point> {
        (self.y..self.bottom())
            .flat_map(move |y| (self.x..self.right()).map(move |x| Point::new(x, y)))
    }

    /// Minimum Euclidean distance from `p` to the rectangle (0 when inside).
    ///
    /// Distances are measured between pixel centres, treating the rectangle
    /// as the set of its pixel coordinates.
    pub fn distance_to_point(self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.x - p.x).max(p.x - (self.right() - 1)).max(0);
        let dy = (self.y - p.y).max(p.y - (self.bottom() - 1)).max(0);
        Point::new(dx, dy).l2_norm()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} at ({}, {})]", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_negative_sizes() {
        let r = Rect::new(0, 0, -5, 3);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn from_corners_any_order() {
        let a = Point::new(5, 1);
        let b = Point::new(2, 4);
        let r = Rect::from_corners(a, b);
        assert_eq!(r, Rect::new(2, 1, 4, 4));
        assert_eq!(r, Rect::from_corners(b, a));
        assert!(r.contains(a) && r.contains(b));
    }

    #[test]
    fn containment_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(9, 9)));
        assert!(!r.contains(Point::new(10, 9)));
        assert!(!r.contains(Point::new(-1, 0)));
    }

    #[test]
    fn contains_rect_cases() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains_rect(Rect::new(2, 2, 3, 3)));
        assert!(outer.contains_rect(outer));
        assert!(!outer.contains_rect(Rect::new(8, 8, 4, 4)));
        assert!(outer.contains_rect(Rect::new(100, 100, 0, 0))); // empty
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(b), Rect::new(2, 2, 2, 2));
        assert!(a.intersects(b));
        assert_eq!(a.union(b), Rect::new(0, 0, 6, 6));

        let c = Rect::new(10, 10, 2, 2);
        assert!(!a.intersects(c));
        assert!(a.intersect(c).is_empty());
        assert_eq!(a.union(Rect::default()), a);
        assert_eq!(Rect::default().union(a), a);
    }

    #[test]
    fn inflate_and_translate() {
        let r = Rect::new(5, 5, 2, 2);
        assert_eq!(r.inflate(1), Rect::new(4, 4, 4, 4));
        assert_eq!(r.inflate(-2), Rect::new(7, 7, 0, 0));
        assert!(r.inflate(-2).is_empty());
        assert_eq!(r.translate(Point::new(-5, 1)), Rect::new(0, 6, 2, 2));
    }

    #[test]
    fn downscale_covers_touched_cells() {
        // [2, 10) x [3, 5) over 4-px cells touches cells x 0..3, y 0..2.
        assert_eq!(Rect::new(2, 3, 8, 2).downscale(4), Rect::new(0, 0, 3, 2));
        // Cell-aligned rectangles map exactly.
        assert_eq!(Rect::new(4, 8, 8, 4).downscale(4), Rect::new(1, 2, 2, 1));
        // A sub-cell rectangle covers its single cell.
        assert_eq!(Rect::new(5, 5, 1, 1).downscale(4), Rect::new(1, 1, 1, 1));
        // Negative coordinates floor toward -inf, not toward zero:
        // pixels y in {-5, -4} straddle the cell boundary at -4.
        assert_eq!(
            Rect::new(-3, -5, 2, 2).downscale(4),
            Rect::new(-1, -2, 1, 2)
        );
        assert_eq!(
            Rect::new(-4, -4, 8, 4).downscale(4),
            Rect::new(-1, -1, 2, 1)
        );
        // Empty stays empty.
        assert!(Rect::new(7, 7, 0, 3).downscale(4).is_empty());
        // Every covered cell genuinely intersects the source rectangle.
        let r = Rect::new(-6, 1, 13, 9);
        let cells = r.downscale(5);
        for c in cells.pixels() {
            let block = Rect::new(c.x * 5, c.y * 5, 5, 5);
            assert!(
                !block.intersect(r).is_empty(),
                "cell {c} does not touch {r}"
            );
        }
        // And no neighbouring ring cell outside the cover intersects.
        for c in cells.inflate(1).pixels() {
            if cells.contains(c) {
                continue;
            }
            let block = Rect::new(c.x * 5, c.y * 5, 5, 5);
            assert!(block.intersect(r).is_empty(), "cell {c} missed by cover");
        }
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn downscale_rejects_zero_cell() {
        let _ = Rect::new(0, 0, 4, 4).downscale(0);
    }

    #[test]
    fn pixel_iteration_row_major() {
        let r = Rect::new(1, 1, 2, 2);
        let px: Vec<_> = r.pixels().collect();
        assert_eq!(
            px,
            vec![
                Point::new(1, 1),
                Point::new(2, 1),
                Point::new(1, 2),
                Point::new(2, 2)
            ]
        );
        assert_eq!(px.len() as i64, r.area());
        assert_eq!(Rect::new(0, 0, 0, 5).pixels().count(), 0);
    }

    #[test]
    fn centered_square() {
        let r = Rect::centered_square(Point::new(10, 10), 5);
        assert_eq!(r, Rect::new(8, 8, 5, 5));
        assert_eq!(r.center(), Point::new(10, 10));
    }

    #[test]
    fn distance_to_point() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.distance_to_point(Point::new(5, 5)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(12, 5)), 3.0);
        assert_eq!(r.distance_to_point(Point::new(12, 13)), 5.0);
        assert_eq!(
            Rect::default().distance_to_point(Point::ORIGIN),
            f64::INFINITY
        );
    }
}

//! Exact Euclidean distance transforms.
//!
//! The landing-zone selector's central primitive is "how far is this pixel
//! from the nearest busy-road pixel?". This module implements the exact
//! two-pass Euclidean distance transform of Felzenszwalb & Huttenlocher
//! (*Distance Transforms of Sampled Functions*, 2012), which runs in
//! `O(n)` per pixel row/column.

use crate::grid::Grid;
use crate::label::LabelMap;
use crate::label::SemanticClass;

/// Exact 1-D squared-distance transform (lower envelope of parabolas).
///
/// `f` holds per-sample costs; the result at `q` is
/// `min_p (q - p)^2 + f[p]`.
fn dt_1d(f: &[f64], out: &mut [f64], v: &mut [usize], z: &mut [f64]) {
    let n = f.len();
    debug_assert!(out.len() == n && v.len() >= n && z.len() > n);
    if n == 0 {
        return;
    }
    // Parabolas with infinite height never contribute to the lower
    // envelope; including them would produce NaN intersections. Build the
    // envelope over finite samples only.
    let mut k = 0usize;
    let mut started = false;
    for q in 0..n {
        if !f[q].is_finite() {
            continue;
        }
        if !started {
            started = true;
            v[0] = q;
            z[0] = f64::NEG_INFINITY;
            z[1] = f64::INFINITY;
            continue;
        }
        loop {
            let p = v[k];
            // Intersection of parabola from q with parabola from p.
            let s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64))
                / (2.0 * q as f64 - 2.0 * p as f64);
            if s <= z[k] {
                if k == 0 {
                    // q dominates everywhere; replace.
                    v[0] = q;
                    z[0] = f64::NEG_INFINITY;
                    z[1] = f64::INFINITY;
                    break;
                }
                k -= 1;
                continue;
            }
            k += 1;
            v[k] = q;
            z[k] = s;
            z[k + 1] = f64::INFINITY;
            break;
        }
    }
    if !started {
        out[..n].fill(f64::INFINITY);
        return;
    }
    let mut k = 0usize;
    #[allow(clippy::needless_range_loop)] // `q` also drives the envelope walk below
    for q in 0..n {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let p = v[k];
        let d = q as f64 - p as f64;
        out[q] = d * d + f[p];
    }
}

/// Exact squared Euclidean distance transform of a boolean mask.
///
/// For every pixel, computes the squared Euclidean distance (in pixels,
/// between pixel centres) to the nearest `true` pixel of `mask`. Pixels of
/// the mask itself get 0. If the mask has no `true` pixel, every output is
/// `f64::INFINITY`.
pub fn squared_distance_transform(mask: &Grid<bool>) -> Grid<f64> {
    let (w, h) = (mask.width(), mask.height());
    let mut g: Grid<f64> = mask.map(|&b| if b { 0.0 } else { f64::INFINITY });
    if w == 0 || h == 0 {
        return g;
    }
    let n = w.max(h);
    let mut f = vec![0.0f64; n];
    let mut out = vec![0.0f64; n];
    let mut v = vec![0usize; n];
    let mut z = vec![0.0f64; n + 1];

    // Columns first.
    for x in 0..w {
        for y in 0..h {
            f[y] = g[(x, y)];
        }
        // Skip columns with no finite sample (all-infinite stays infinite).
        if f[..h].iter().any(|v| v.is_finite()) {
            dt_1d(&f[..h], &mut out[..h], &mut v, &mut z);
            for y in 0..h {
                g[(x, y)] = out[y];
            }
        }
    }
    // Then rows.
    for y in 0..h {
        f[..w].copy_from_slice(g.row(y));
        if f[..w].iter().any(|v| v.is_finite()) {
            dt_1d(&f[..w], &mut out[..w], &mut v, &mut z);
            g.row_mut(y).copy_from_slice(&out[..w]);
        }
    }
    g
}

/// Exact Euclidean distance transform of a boolean mask (in pixels).
///
/// See [`squared_distance_transform`].
///
/// # Example
///
/// ```
/// use el_geom::Grid;
/// use el_geom::distance::distance_transform;
/// let mut mask = Grid::new(9, 9, false);
/// mask[(4, 4)] = true;
/// let d = distance_transform(&mask);
/// assert_eq!(d[(4, 4)], 0.0);
/// assert_eq!(d[(4, 0)], 4.0);
/// assert!((d[(0, 0)] - 32f64.sqrt()).abs() < 1e-9);
/// ```
pub fn distance_transform(mask: &Grid<bool>) -> Grid<f64> {
    squared_distance_transform(mask).map(|&d| d.sqrt())
}

/// Distance (in pixels) from each pixel to the nearest pixel whose class
/// satisfies `pred`.
///
/// This is the "distance from busy road" map when `pred` is
/// [`SemanticClass::is_busy_road`].
pub fn distance_from(labels: &LabelMap, mut pred: impl FnMut(SemanticClass) -> bool) -> Grid<f64> {
    let mask = labels.map(|&c| pred(c));
    distance_transform(&mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference implementation.
    fn brute_force(mask: &Grid<bool>) -> Grid<f64> {
        let seeds: Vec<_> = mask
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(p, _)| p)
            .collect();
        Grid::from_fn(mask.width(), mask.height(), |x, y| {
            seeds
                .iter()
                .map(|s| {
                    let dx = s.x - x as i64;
                    let dy = s.y - y as i64;
                    ((dx * dx + dy * dy) as f64).sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
    }

    #[test]
    fn empty_mask_is_infinite() {
        let mask = Grid::new(5, 5, false);
        let d = distance_transform(&mask);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn full_mask_is_zero() {
        let mask = Grid::new(5, 5, true);
        let d = distance_transform(&mask);
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_seed_matches_euclidean() {
        let mut mask = Grid::new(7, 5, false);
        mask[(2, 3)] = true;
        let d = distance_transform(&mask);
        for (p, &v) in d.enumerate() {
            let expected = ((p.x - 2).pow(2) as f64 + (p.y - 3).pow(2) as f64).sqrt();
            assert!((v - expected).abs() < 1e-9, "at {p}: {v} vs {expected}");
        }
    }

    #[test]
    fn matches_brute_force_on_patterns() {
        // Deterministic pseudo-random pattern.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..5 {
            let w = 8 + trial * 3;
            let h = 6 + trial * 2;
            let mask = Grid::from_fn(w, h, |_, _| next() % 7 == 0);
            if mask.count(|&b| b) == 0 {
                continue;
            }
            let fast = distance_transform(&mask);
            let slow = brute_force(&mask);
            for (p, &v) in fast.enumerate() {
                assert!((v - slow[p]).abs() < 1e-9, "trial {trial} at {p}");
            }
        }
    }

    #[test]
    fn distance_from_labels() {
        use crate::label::SemanticClass;
        let labels = Grid::from_fn(10, 1, |x, _| {
            if x == 0 {
                SemanticClass::Road
            } else {
                SemanticClass::LowVegetation
            }
        });
        let d = distance_from(&labels, SemanticClass::is_busy_road);
        for x in 0..10usize {
            assert_eq!(d[(x, 0)], x as f64);
        }
    }

    #[test]
    fn degenerate_shapes() {
        let mask: Grid<bool> = Grid::new(0, 0, false);
        let d = distance_transform(&mask);
        assert!(d.is_empty());

        let mut mask = Grid::new(1, 6, false);
        mask[(0, 5)] = true;
        let d = distance_transform(&mask);
        assert_eq!(d[(0, 0)], 5.0);
    }
}

//! A generic dense 2-D raster.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::error::GeomError;
use crate::point::Point;
use crate::rect::Rect;

/// A dense, row-major 2-D raster of `T` values.
///
/// `Grid` is the universal container of the stack: semantic label maps,
/// rendered feature images (as `Grid<[f32; C]>` or per-channel `Grid<f32>`),
/// score maps, masks and distance fields are all grids.
///
/// Indexing is `(x, y)` — column first, matching [`Point`](crate::Point).
///
/// # Example
///
/// ```
/// use el_geom::Grid;
/// let mut g = Grid::new(4, 3, 0u8);
/// g[(2, 1)] = 7;
/// assert_eq!(g[(2, 1)], 7);
/// assert_eq!(g.width(), 4);
/// assert_eq!(g.height(), 3);
/// assert_eq!(g.iter().copied().sum::<u8>(), 7);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with copies of `fill`.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        Grid {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Fills the entire grid with copies of `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Extracts a copy of the sub-grid covered by `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::OutOfBounds`] if `rect` is not entirely inside
    /// the grid.
    pub fn crop(&self, rect: Rect) -> Result<Grid<T>, GeomError> {
        if !self.bounds().contains_rect(rect) {
            return Err(GeomError::OutOfBounds {
                rect,
                width: self.width,
                height: self.height,
            });
        }
        let mut out = Vec::with_capacity((rect.w * rect.h) as usize);
        for y in rect.y..rect.bottom() {
            let row = self.row(y as usize);
            out.extend_from_slice(&row[rect.x as usize..rect.right() as usize]);
        }
        Ok(Grid {
            width: rect.w as usize,
            height: rect.h as usize,
            data: out,
        })
    }

    /// Writes `src` into `self` with its top-left corner at `at`.
    ///
    /// Pixels of `src` falling outside `self` are silently clipped.
    pub fn blit(&mut self, src: &Grid<T>, at: Point) {
        let dst_bounds = self.bounds();
        let src_rect = Rect::new(at.x, at.y, src.width as i64, src.height as i64);
        let clip = dst_bounds.intersect(src_rect);
        if clip.w <= 0 || clip.h <= 0 {
            return;
        }
        // Per-row slice copies: the clip rectangle is resolved once, so no
        // per-pixel bounds math or index checks remain.
        let sx0 = (clip.x - at.x) as usize;
        let sx1 = (clip.right() - at.x) as usize;
        let dx0 = clip.x as usize;
        let dx1 = clip.right() as usize;
        for y in clip.y..clip.bottom() {
            let sy = (y - at.y) as usize;
            let src_row = &src.row(sy)[sx0..sx1];
            self.row_mut(y as usize)[dx0..dx1].clone_from_slice(src_row);
        }
    }
}

impl<T> Grid<T> {
    /// Creates a grid by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Grid {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::SizeMismatch`] if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self, GeomError> {
        if data.len() != width * height {
            return Err(GeomError::SizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Grid {
            width,
            height,
            data,
        })
    }

    /// Grid width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the grid has no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bounding rectangle `(0, 0, width, height)`.
    #[inline]
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width as i64, self.height as i64)
    }

    /// `true` if `(x, y)` is a valid pixel coordinate.
    #[inline]
    pub fn in_bounds(&self, x: i64, y: i64) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height
    }

    /// Returns a reference to the pixel at `p`, or `None` when out of
    /// bounds.
    #[inline]
    pub fn get(&self, p: Point) -> Option<&T> {
        if self.in_bounds(p.x, p.y) {
            Some(&self.data[p.y as usize * self.width + p.x as usize])
        } else {
            None
        }
    }

    /// Returns a mutable reference to the pixel at `p`, or `None` when out
    /// of bounds.
    #[inline]
    pub fn get_mut(&mut self, p: Point) -> Option<&mut T> {
        if self.in_bounds(p.x, p.y) {
            Some(&mut self.data[p.y as usize * self.width + p.x as usize])
        } else {
            None
        }
    }

    /// Sets the pixel at `p` if it is in bounds; out-of-bounds writes are
    /// ignored (useful for clipped rasterisation).
    #[inline]
    pub fn set_clipped(&mut self, p: Point, value: T) {
        if let Some(v) = self.get_mut(p) {
            *v = value;
        }
    }

    /// Immutable view of row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(
            y < self.height,
            "row {y} out of bounds (height {})",
            self.height
        );
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable view of row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(
            y < self.height,
            "row {y} out of bounds (height {})",
            self.height
        );
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid and returns its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over pixel values in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates over pixel values mutably in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Iterates over `(Point, &T)` pairs in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = (Point, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (Point::new((i % w) as i64, (i / w) as i64), v))
    }

    /// Applies `f` to every pixel, producing a new grid of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Combines two same-shaped grids pixel-wise.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ShapeMismatch`] if the grids differ in size.
    pub fn zip_map<U, V>(
        &self,
        other: &Grid<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Result<Grid<V>, GeomError> {
        if self.width != other.width || self.height != other.height {
            return Err(GeomError::ShapeMismatch {
                a: (self.width, self.height),
                b: (other.width, other.height),
            });
        }
        Ok(Grid {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        })
    }

    /// Counts pixels satisfying `pred`.
    pub fn count(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.data.iter().filter(|v| pred(v)).count()
    }
}

impl Grid<bool> {
    /// Fraction of `true` pixels, in `[0, 1]`. Returns 0 for empty grids.
    pub fn fraction_set(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count(|&b| b) as f64 / self.len() as f64
        }
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds ({}x{})",
            self.width,
            self.height
        );
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds ({}x{})",
            self.width,
            self.height
        );
        &mut self.data[y * self.width + x]
    }
}

impl<T> Index<Point> for Grid<T> {
    type Output = T;
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    #[inline]
    fn index(&self, p: Point) -> &T {
        self.get(p)
            .unwrap_or_else(|| panic!("pixel {p} out of bounds ({}x{})", self.width, self.height))
    }
}

impl<T> IndexMut<Point> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, p: Point) -> &mut T {
        let (w, h) = (self.width, self.height);
        self.get_mut(p)
            .unwrap_or_else(|| panic!("pixel {p} out of bounds ({w}x{h})"))
    }
}

impl<'a, T> IntoIterator for &'a Grid<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut g = Grid::new(3, 2, 0i32);
        assert_eq!(g.len(), 6);
        assert_eq!(g.bounds(), Rect::new(0, 0, 3, 2));
        g[(0, 1)] = 5;
        g[Point::new(2, 0)] = 9;
        assert_eq!(g[(0, 1)], 5);
        assert_eq!(g[Point::new(2, 0)], 9);
        assert_eq!(g.get(Point::new(3, 0)), None);
        assert_eq!(g.get(Point::new(-1, 0)), None);
    }

    #[test]
    fn from_fn_row_major() {
        let g = Grid::from_fn(3, 2, |x, y| (x, y));
        assert_eq!(g.as_slice()[0], (0, 0));
        assert_eq!(g.as_slice()[1], (1, 0));
        assert_eq!(g.as_slice()[3], (0, 1));
    }

    #[test]
    fn from_vec_validates_size() {
        assert!(Grid::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let g = Grid::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(g[(1, 1)], 4);
    }

    #[test]
    fn crop_in_and_out_of_bounds() {
        let g = Grid::from_fn(4, 4, |x, y| y * 4 + x);
        let c = g.crop(Rect::new(1, 1, 2, 2)).unwrap();
        assert_eq!(c.width(), 2);
        assert_eq!(c[(0, 0)], 5);
        assert_eq!(c[(1, 1)], 10);
        assert!(g.crop(Rect::new(3, 3, 2, 2)).is_err());
        assert!(g.crop(Rect::new(-1, 0, 2, 2)).is_err());
    }

    #[test]
    fn blit_clips() {
        let mut g = Grid::new(4, 4, 0);
        let src = Grid::new(3, 3, 7);
        g.blit(&src, Point::new(2, 2));
        assert_eq!(g[(2, 2)], 7);
        assert_eq!(g[(3, 3)], 7);
        assert_eq!(g[(1, 1)], 0);
        assert_eq!(g.count(|&v| v == 7), 4);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Grid::from_fn(2, 2, |x, y| (x + y) as i32);
        let b = a.map(|v| v * 2);
        assert_eq!(b[(1, 1)], 4);
        let s = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(s[(1, 1)], 6);
        let c = Grid::new(3, 2, 0);
        assert!(a.zip_map(&c, |x, y| x + y).is_err());
    }

    #[test]
    fn enumerate_points() {
        let g = Grid::from_fn(2, 2, |x, y| x + 10 * y);
        let v: Vec<_> = g.enumerate().collect();
        assert_eq!(v[0], (Point::new(0, 0), &0));
        assert_eq!(v[3], (Point::new(1, 1), &11));
    }

    #[test]
    fn bool_fraction() {
        let g = Grid::from_fn(2, 2, |x, _| x == 0);
        assert_eq!(g.fraction_set(), 0.5);
        let e: Grid<bool> = Grid::new(0, 0, false);
        assert_eq!(e.fraction_set(), 0.0);
    }

    #[test]
    fn set_clipped_ignores_out_of_bounds() {
        let mut g = Grid::new(2, 2, 0);
        g.set_clipped(Point::new(-1, 0), 9);
        g.set_clipped(Point::new(1, 1), 9);
        assert_eq!(g[(1, 1)], 9);
        assert_eq!(g.count(|&v| v == 9), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let g = Grid::new(2, 2, 0);
        let _ = g[(2, 0)];
    }

    #[test]
    fn rows() {
        let g = Grid::from_fn(3, 2, |x, y| x + 10 * y);
        assert_eq!(g.row(1), &[10, 11, 12]);
        let mut g = g;
        g.row_mut(0)[2] = 99;
        assert_eq!(g[(2, 0)], 99);
    }
}

//! Integer pixel coordinates and continuous 2-D vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An integer pixel coordinate `(x, y)`.
///
/// `x` grows to the right, `y` grows downwards, matching image raster order.
/// Coordinates are signed so that intermediate geometry (offsets, clamped
/// rectangles) can go out of bounds without wrapping.
///
/// # Example
///
/// ```
/// use el_geom::Point;
/// let p = Point::new(3, 4);
/// assert_eq!(p + Point::new(1, -1), Point::new(4, 3));
/// assert_eq!(p.l2_norm(), 5.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate (column), grows rightwards.
    pub x: i64,
    /// Vertical coordinate (row), grows downwards.
    pub y: i64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean length of the vector from the origin to `self`.
    #[inline]
    pub fn l2_norm_sq(self) -> i64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean length of the vector from the origin to `self`.
    #[inline]
    pub fn l2_norm(self) -> f64 {
        (self.l2_norm_sq() as f64).sqrt()
    }

    /// Euclidean distance between two points.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).l2_norm()
    }

    /// Manhattan (L1) distance between two points.
    #[inline]
    pub fn l1_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance between two points.
    #[inline]
    pub fn linf_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Converts to a continuous vector.
    #[inline]
    pub fn to_vec2(self) -> Vec2 {
        Vec2::new(self.x as f64, self.y as f64)
    }

    /// The four 4-connected neighbours (left, right, up, down).
    #[inline]
    pub fn neighbours4(self) -> [Point; 4] {
        [
            Point::new(self.x - 1, self.y),
            Point::new(self.x + 1, self.y),
            Point::new(self.x, self.y - 1),
            Point::new(self.x, self.y + 1),
        ]
    }

    /// The eight 8-connected neighbours.
    #[inline]
    pub fn neighbours8(self) -> [Point; 8] {
        [
            Point::new(self.x - 1, self.y - 1),
            Point::new(self.x, self.y - 1),
            Point::new(self.x + 1, self.y - 1),
            Point::new(self.x - 1, self.y),
            Point::new(self.x + 1, self.y),
            Point::new(self.x - 1, self.y + 1),
            Point::new(self.x, self.y + 1),
            Point::new(self.x + 1, self.y + 1),
        ]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl Mul<i64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: i64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(i64, i64)> for Point {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (i64, i64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// A continuous 2-D vector with `f64` components.
///
/// Used for sub-pixel geometry: wind drift offsets, scene-generation
/// directions and metric-space conversions.
///
/// # Example
///
/// ```
/// use el_geom::Vec2;
/// let wind = Vec2::new(3.0, 4.0);
/// assert_eq!(wind.norm(), 5.0);
/// assert!((wind.normalized().norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a unit vector at `angle` radians from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns this vector scaled to unit length.
    ///
    /// Returns [`Vec2::ZERO`] if the norm is zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// The vector rotated 90° counter-clockwise (in image coordinates,
    /// y-down, this appears as a clockwise turn).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle in radians from the +x axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Rounds to the nearest integer pixel.
    #[inline]
    pub fn round(self) -> Point {
        Point::new(self.x.round() as i64, self.y.round() as i64)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl From<Point> for Vec2 {
    #[inline]
    fn from(p: Point) -> Self {
        p.to_vec2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(2, 3);
        let b = Point::new(-1, 5);
        assert_eq!(a + b, Point::new(1, 8));
        assert_eq!(a - b, Point::new(3, -2));
        assert_eq!(-a, Point::new(-2, -3));
        assert_eq!(a * 3, Point::new(6, 9));
    }

    #[test]
    fn point_distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.l1_distance(b), 7);
        assert_eq!(a.linf_distance(b), 4);
        assert_eq!(b.l2_norm_sq(), 25);
    }

    #[test]
    fn point_neighbours() {
        let p = Point::new(5, 5);
        let n4 = p.neighbours4();
        assert_eq!(n4.len(), 4);
        for n in n4 {
            assert_eq!(p.l1_distance(n), 1);
        }
        let n8 = p.neighbours8();
        assert_eq!(n8.len(), 8);
        for n in n8 {
            assert_eq!(p.linf_distance(n), 1);
        }
        // All 8-neighbours are distinct.
        let mut v: Vec<_> = n8.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn point_conversions() {
        let p: Point = (7, -2).into();
        assert_eq!(p, Point::new(7, -2));
        let t: (i64, i64) = p.into();
        assert_eq!(t, (7, -2));
        assert_eq!(p.to_vec2(), Vec2::new(7.0, -2.0));
    }

    #[test]
    fn vec2_basics() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vec2::new(1.0, 0.0)), -4.0);
        assert_eq!(v.perp(), Vec2::new(-4.0, 3.0));
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn vec2_angle_roundtrip() {
        for k in 0..16 {
            let a = -3.0 + 0.4 * k as f64;
            let v = Vec2::from_angle(a);
            assert!((v.norm() - 1.0).abs() < 1e-12);
            let b = v.angle();
            let diff = (a - b).rem_euclid(std::f64::consts::TAU);
            assert!(diff < 1e-9 || (std::f64::consts::TAU - diff) < 1e-9);
        }
    }

    #[test]
    fn vec2_lerp_and_round() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -2.0));
        assert_eq!(Vec2::new(2.5, -1.4).round(), Point::new(3, -1));
    }
}

//! Connected-component labelling.
//!
//! Candidate landing zones are extracted as connected components of the
//! "safe" mask (pixels far enough from busy roads). This module provides a
//! two-pass union-find labelling with per-component statistics.

use serde::{Deserialize, Serialize};

use crate::grid::Grid;
use crate::point::Point;
use crate::rect::Rect;

/// Pixel connectivity for component labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Connectivity {
    /// 4-connectivity (edge-adjacent pixels).
    #[default]
    Four,
    /// 8-connectivity (edge- or corner-adjacent pixels).
    Eight,
}

/// Statistics of one connected component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component id; pixel `p` belongs to this component iff
    /// `labels[p] == Some(id)`.
    pub id: u32,
    /// Number of pixels.
    pub area: usize,
    /// Tight bounding box.
    pub bbox: Rect,
    /// Centroid (mean pixel position).
    pub centroid: (f64, f64),
}

impl Component {
    /// Centroid rounded to the nearest pixel.
    pub fn centroid_pixel(&self) -> Point {
        Point::new(
            self.centroid.0.round() as i64,
            self.centroid.1.round() as i64,
        )
    }

    /// Fill ratio: `area / bbox.area()`, in `(0, 1]`.
    ///
    /// Compact blob-like components have a high fill ratio; snaky ones are
    /// low. Used by zone selection to prefer compact landing areas.
    pub fn fill_ratio(&self) -> f64 {
        if self.bbox.area() == 0 {
            0.0
        } else {
            self.area as f64 / self.bbox.area() as f64
        }
    }
}

/// The result of component labelling: a per-pixel component id plus
/// per-component statistics.
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// `Some(id)` for foreground pixels, `None` for background.
    pub labels: Grid<Option<u32>>,
    /// Component statistics, indexed by id.
    pub components: Vec<Component>,
}

impl ComponentLabels {
    /// The largest component by area, or `None` if there is none.
    pub fn largest(&self) -> Option<&Component> {
        self.components.iter().max_by_key(|c| c.area)
    }

    /// Components sorted by decreasing area.
    pub fn by_area_desc(&self) -> Vec<&Component> {
        let mut v: Vec<&Component> = self.components.iter().collect();
        v.sort_by(|a, b| b.area.cmp(&a.area).then(a.id.cmp(&b.id)));
        v
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (hi, lo) = if ra < rb { (rb, ra) } else { (ra, rb) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Labels connected components of the `true` pixels of `mask`.
///
/// Returns compactly renumbered component ids (0, 1, 2, …) in first-pixel
/// raster order, along with per-component statistics.
///
/// # Example
///
/// ```
/// use el_geom::{Grid, label_components};
/// use el_geom::components::Connectivity;
/// let mut mask = Grid::new(5, 1, false);
/// mask[(0, 0)] = true;
/// mask[(1, 0)] = true;
/// mask[(4, 0)] = true;
/// let cc = label_components(&mask, Connectivity::Four);
/// assert_eq!(cc.components.len(), 2);
/// assert_eq!(cc.largest().unwrap().area, 2);
/// ```
pub fn label_components(mask: &Grid<bool>, connectivity: Connectivity) -> ComponentLabels {
    let (w, h) = (mask.width(), mask.height());
    let mut provisional: Grid<Option<u32>> = Grid::new(w, h, None);
    let mut uf = UnionFind::new();

    for y in 0..h {
        for x in 0..w {
            if !mask[(x, y)] {
                continue;
            }
            // Look at already-visited neighbours (left, up; plus the two
            // diagonals above for 8-connectivity).
            let mut neigh: [Option<u32>; 4] = [None; 4];
            if x > 0 {
                neigh[0] = provisional[(x - 1, y)];
            }
            if y > 0 {
                neigh[1] = provisional[(x, y - 1)];
                if connectivity == Connectivity::Eight {
                    if x > 0 {
                        neigh[2] = provisional[(x - 1, y - 1)];
                    }
                    if x + 1 < w {
                        neigh[3] = provisional[(x + 1, y - 1)];
                    }
                }
            }
            let mut assigned = None;
            for n in neigh.into_iter().flatten() {
                match assigned {
                    None => assigned = Some(n),
                    Some(a) => uf.union(a, n),
                }
            }
            let id = assigned.unwrap_or_else(|| uf.make());
            provisional[(x, y)] = Some(id);
        }
    }

    // Renumber roots compactly in raster order of first appearance.
    let mut remap: Vec<Option<u32>> = vec![None; uf.parent.len()];
    let mut components: Vec<Component> = Vec::new();
    let mut labels: Grid<Option<u32>> = Grid::new(w, h, None);
    let mut sums: Vec<(f64, f64)> = Vec::new();

    for y in 0..h {
        for x in 0..w {
            let Some(p) = provisional[(x, y)] else {
                continue;
            };
            let root = uf.find(p);
            let id = match remap[root as usize] {
                Some(id) => id,
                None => {
                    let id = components.len() as u32;
                    remap[root as usize] = Some(id);
                    components.push(Component {
                        id,
                        area: 0,
                        bbox: Rect::new(x as i64, y as i64, 0, 0),
                        centroid: (0.0, 0.0),
                    });
                    sums.push((0.0, 0.0));
                    id
                }
            };
            labels[(x, y)] = Some(id);
            let c = &mut components[id as usize];
            c.area += 1;
            c.bbox = c.bbox.union(Rect::new(x as i64, y as i64, 1, 1));
            sums[id as usize].0 += x as f64;
            sums[id as usize].1 += y as f64;
        }
    }
    for (c, s) in components.iter_mut().zip(sums) {
        c.centroid = (s.0 / c.area as f64, s.1 / c.area as f64);
    }
    ComponentLabels { labels, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_str(rows: &[&str]) -> Grid<bool> {
        let h = rows.len();
        let w = rows[0].len();
        Grid::from_fn(w, h, |x, y| rows[y].as_bytes()[x] == b'#')
    }

    #[test]
    fn empty_mask() {
        let cc = label_components(&Grid::new(4, 4, false), Connectivity::Four);
        assert!(cc.components.is_empty());
        assert!(cc.largest().is_none());
    }

    #[test]
    fn single_blob() {
        let mask = mask_from_str(&["..##", "..##", "...."]);
        let cc = label_components(&mask, Connectivity::Four);
        assert_eq!(cc.components.len(), 1);
        let c = &cc.components[0];
        assert_eq!(c.area, 4);
        assert_eq!(c.bbox, Rect::new(2, 0, 2, 2));
        assert_eq!(c.centroid, (2.5, 0.5));
        assert_eq!(c.fill_ratio(), 1.0);
    }

    #[test]
    fn diagonal_connectivity() {
        let mask = mask_from_str(&["#.", ".#"]);
        let four = label_components(&mask, Connectivity::Four);
        assert_eq!(four.components.len(), 2);
        let eight = label_components(&mask, Connectivity::Eight);
        assert_eq!(eight.components.len(), 1);
        assert_eq!(eight.components[0].area, 2);
    }

    #[test]
    fn u_shape_merges() {
        // The two arms of the U are discovered separately and must be
        // merged by union-find when the bottom row connects them.
        let mask = mask_from_str(&["#.#", "#.#", "###"]);
        let cc = label_components(&mask, Connectivity::Four);
        assert_eq!(cc.components.len(), 1);
        assert_eq!(cc.components[0].area, 7);
    }

    #[test]
    fn multiple_components_ordering() {
        let mask = mask_from_str(&["#..#", "....", "##.."]);
        let cc = label_components(&mask, Connectivity::Four);
        assert_eq!(cc.components.len(), 3);
        // Raster order of first appearance.
        assert_eq!(cc.components[0].bbox.top_left(), Point::new(0, 0));
        assert_eq!(cc.components[1].bbox.top_left(), Point::new(3, 0));
        assert_eq!(cc.components[2].bbox.top_left(), Point::new(0, 2));
        let by_area = cc.by_area_desc();
        assert_eq!(by_area[0].area, 2);
        assert_eq!(cc.largest().unwrap().id, by_area[0].id);
    }

    #[test]
    fn labels_consistent_with_components() {
        let mask = mask_from_str(&["##..", "..##", "##.#"]);
        let cc = label_components(&mask, Connectivity::Eight);
        let mut counts = vec![0usize; cc.components.len()];
        for (p, l) in cc.labels.enumerate() {
            match l {
                Some(id) => {
                    assert!(mask[p]);
                    counts[*id as usize] += 1;
                    assert!(cc.components[*id as usize].bbox.contains(p));
                }
                None => assert!(!mask[p]),
            }
        }
        for (c, n) in cc.components.iter().zip(counts) {
            assert_eq!(c.area, n);
        }
    }

    #[test]
    fn centroid_pixel_rounding() {
        let c = Component {
            id: 0,
            area: 2,
            bbox: Rect::new(0, 0, 2, 1),
            centroid: (0.5, 0.0),
        };
        assert_eq!(c.centroid_pixel(), Point::new(1, 0));
    }
}

//! The UAVid semantic classes and dense label maps.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::grid::Grid;

/// The eight semantic classes of the UAVid dataset (Lyu et al., 2020), used
/// by the paper's MSDnet segmentation model.
///
/// The paper's busy-road super-category — the pixels an emergency landing
/// must avoid at all costs — is the union of [`Road`](SemanticClass::Road),
/// [`StaticCar`](SemanticClass::StaticCar) and
/// [`MovingCar`](SemanticClass::MovingCar); see
/// [`SemanticClass::is_busy_road`].
///
/// # Example
///
/// ```
/// use el_geom::SemanticClass;
/// assert!(SemanticClass::Road.is_busy_road());
/// assert!(!SemanticClass::LowVegetation.is_busy_road());
/// assert_eq!(SemanticClass::COUNT, 8);
/// assert_eq!(SemanticClass::from_index(1), Some(SemanticClass::Road));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum SemanticClass {
    /// Buildings and other man-made structures.
    Building = 0,
    /// Roads and other drivable surfaces.
    Road = 1,
    /// Parked (static) cars.
    StaticCar = 2,
    /// Trees and tall vegetation.
    Tree = 3,
    /// Grass and other low vegetation — the paper's preferred landing
    /// surface.
    LowVegetation = 4,
    /// Humans.
    Humans = 5,
    /// Moving cars.
    MovingCar = 6,
    /// Background clutter: everything else.
    Clutter = 7,
}

impl SemanticClass {
    /// Number of classes (8, as in UAVid).
    pub const COUNT: usize = 8;

    /// All classes in index order.
    pub const ALL: [SemanticClass; Self::COUNT] = [
        SemanticClass::Building,
        SemanticClass::Road,
        SemanticClass::StaticCar,
        SemanticClass::Tree,
        SemanticClass::LowVegetation,
        SemanticClass::Humans,
        SemanticClass::MovingCar,
        SemanticClass::Clutter,
    ];

    /// The busy-road super-category: `{Road, StaticCar, MovingCar}`.
    ///
    /// The paper (Section V-B) cannot distinguish busy from quiet roads in
    /// UAVid, so it conservatively treats every road or car pixel as busy
    /// road.
    pub const BUSY_ROAD: [SemanticClass; 3] = [
        SemanticClass::Road,
        SemanticClass::StaticCar,
        SemanticClass::MovingCar,
    ];

    /// The class index in `0..COUNT` (the output channel of the
    /// segmentation model).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The class with the given index, or `None` if out of range.
    #[inline]
    pub fn from_index(index: usize) -> Option<SemanticClass> {
        Self::ALL.get(index).copied()
    }

    /// `true` if this class belongs to the busy-road super-category.
    #[inline]
    pub fn is_busy_road(self) -> bool {
        matches!(
            self,
            SemanticClass::Road | SemanticClass::StaticCar | SemanticClass::MovingCar
        )
    }

    /// `true` if landing on this class directly endangers people
    /// (busy road or humans) per the paper's Table II severity analysis.
    #[inline]
    pub fn endangers_people(self) -> bool {
        self.is_busy_road() || self == SemanticClass::Humans
    }

    /// A short lowercase identifier (e.g. `"low_vegetation"`).
    pub fn name(self) -> &'static str {
        match self {
            SemanticClass::Building => "building",
            SemanticClass::Road => "road",
            SemanticClass::StaticCar => "static_car",
            SemanticClass::Tree => "tree",
            SemanticClass::LowVegetation => "low_vegetation",
            SemanticClass::Humans => "humans",
            SemanticClass::MovingCar => "moving_car",
            SemanticClass::Clutter => "clutter",
        }
    }

    /// The UAVid visualisation colour (R, G, B) for this class.
    pub fn color(self) -> (u8, u8, u8) {
        match self {
            SemanticClass::Building => (128, 0, 0),
            SemanticClass::Road => (128, 64, 128),
            SemanticClass::StaticCar => (192, 0, 192),
            SemanticClass::Tree => (0, 128, 0),
            SemanticClass::LowVegetation => (128, 128, 0),
            SemanticClass::Humans => (64, 64, 0),
            SemanticClass::MovingCar => (64, 0, 128),
            SemanticClass::Clutter => (0, 0, 0),
        }
    }
}

impl fmt::Display for SemanticClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for SemanticClass {
    /// Defaults to [`Clutter`](SemanticClass::Clutter), the UAVid background
    /// class.
    fn default() -> Self {
        SemanticClass::Clutter
    }
}

/// A dense per-pixel semantic label map.
pub type LabelMap = Grid<SemanticClass>;

/// Per-class pixel counts over a label map.
///
/// # Example
///
/// ```
/// use el_geom::{Grid, SemanticClass};
/// use el_geom::label::class_histogram;
/// let labels = Grid::new(4, 4, SemanticClass::Road);
/// let hist = class_histogram(&labels);
/// assert_eq!(hist[SemanticClass::Road.index()], 16);
/// ```
pub fn class_histogram(labels: &LabelMap) -> [usize; SemanticClass::COUNT] {
    let mut hist = [0usize; SemanticClass::COUNT];
    for c in labels.iter() {
        hist[c.index()] += 1;
    }
    hist
}

/// Boolean mask of pixels whose class satisfies `pred`.
pub fn mask_where(labels: &LabelMap, mut pred: impl FnMut(SemanticClass) -> bool) -> Grid<bool> {
    labels.map(|&c| pred(c))
}

/// Boolean mask of the busy-road super-category.
pub fn busy_road_mask(labels: &LabelMap) -> Grid<bool> {
    mask_where(labels, SemanticClass::is_busy_road)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, c) in SemanticClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(SemanticClass::from_index(i), Some(*c));
        }
        assert_eq!(SemanticClass::from_index(8), None);
    }

    #[test]
    fn busy_road_super_category() {
        let busy: Vec<_> = SemanticClass::ALL
            .iter()
            .filter(|c| c.is_busy_road())
            .copied()
            .collect();
        assert_eq!(busy, SemanticClass::BUSY_ROAD.to_vec());
        assert!(SemanticClass::Humans.endangers_people());
        assert!(!SemanticClass::Tree.endangers_people());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SemanticClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SemanticClass::COUNT);
    }

    #[test]
    fn colors_unique() {
        let mut colors: Vec<_> = SemanticClass::ALL.iter().map(|c| c.color()).collect();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), SemanticClass::COUNT);
    }

    #[test]
    fn histogram_sums_to_len() {
        let labels = Grid::from_fn(5, 5, |x, y| {
            SemanticClass::from_index((x + y) % SemanticClass::COUNT).unwrap()
        });
        let hist = class_histogram(&labels);
        assert_eq!(hist.iter().sum::<usize>(), labels.len());
    }

    #[test]
    fn masks() {
        let labels = Grid::from_fn(4, 1, |x, _| {
            if x < 2 {
                SemanticClass::Road
            } else {
                SemanticClass::Tree
            }
        });
        let m = busy_road_mask(&labels);
        assert_eq!(m.count(|&b| b), 2);
        let t = mask_where(&labels, |c| c == SemanticClass::Tree);
        assert_eq!(t.count(|&b| b), 2);
    }

    #[test]
    fn default_is_clutter() {
        assert_eq!(SemanticClass::default(), SemanticClass::Clutter);
    }
}

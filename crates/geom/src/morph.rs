//! Binary morphology: dilation and erosion with Euclidean disks.
//!
//! Safety buffers in the landing-zone selector are morphological operations:
//! "inflate every road pixel by the parachute drift radius" is a dilation of
//! the road mask with a disk. Both operations are implemented on top of the
//! exact [distance transform](crate::distance), so they use true Euclidean
//! disks rather than square approximations.

use crate::distance::squared_distance_transform;
use crate::grid::Grid;

/// Dilates the `true` region of `mask` by a Euclidean disk of the given
/// radius (in pixels).
///
/// A pixel is set in the output iff its (centre-to-centre) distance to the
/// nearest `true` input pixel is `<= radius`. `radius <= 0` returns the
/// mask unchanged.
///
/// # Example
///
/// ```
/// use el_geom::Grid;
/// use el_geom::morph::dilate;
/// let mut mask = Grid::new(7, 7, false);
/// mask[(3, 3)] = true;
/// let d = dilate(&mask, 2.0);
/// assert!(d[(5, 3)]);  // distance 2
/// assert!(!d[(5, 5)]); // distance 2.83
/// ```
pub fn dilate(mask: &Grid<bool>, radius: f64) -> Grid<bool> {
    if radius <= 0.0 {
        return mask.clone();
    }
    let r2 = radius * radius;
    squared_distance_transform(mask).map(|&d2| d2 <= r2 + 1e-9)
}

/// Erodes the `true` region of `mask` by a Euclidean disk of the given
/// radius (in pixels).
///
/// A pixel survives iff every pixel within `radius` of it (including
/// outside the grid? — no: the grid boundary is treated as background, so
/// pixels near the border erode away) is `true`. `radius <= 0` returns the
/// mask unchanged.
pub fn erode(mask: &Grid<bool>, radius: f64) -> Grid<bool> {
    if radius <= 0.0 {
        return mask.clone();
    }
    // Erosion = complement of dilation of the complement. Pad the
    // complement conceptually with `true` at the border by treating
    // out-of-grid as background: we add a 1-pixel border of background
    // around the mask before dilating its complement.
    let (w, h) = (mask.width(), mask.height());
    let padded = Grid::from_fn(w + 2, h + 2, |x, y| {
        if x == 0 || y == 0 || x == w + 1 || y == h + 1 {
            true // complement of background border
        } else {
            !mask[(x - 1, y - 1)]
        }
    });
    let dil = dilate(&padded, radius);
    Grid::from_fn(w, h, |x, y| !dil[(x + 1, y + 1)])
}

/// Morphological opening: erosion followed by dilation.
///
/// Removes `true` features thinner than `2 * radius` while approximately
/// preserving larger ones. Used to discard landing-zone slivers.
pub fn open(mask: &Grid<bool>, radius: f64) -> Grid<bool> {
    dilate(&erode(mask, radius), radius)
}

/// Morphological closing: dilation followed by erosion.
///
/// Fills `false` gaps thinner than `2 * radius`.
pub fn close(mask: &Grid<bool>, radius: f64) -> Grid<bool> {
    erode(&dilate(mask, radius), radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(mask: &Grid<bool>) -> usize {
        mask.count(|&b| b)
    }

    #[test]
    fn dilate_grows_erode_shrinks() {
        let mut mask = Grid::new(11, 11, false);
        for y in 4..7 {
            for x in 4..7 {
                mask[(x, y)] = true;
            }
        }
        let d = dilate(&mask, 1.0);
        let e = erode(&mask, 1.0);
        assert!(count(&d) > count(&mask));
        assert!(count(&e) < count(&mask));
        // 3x3 square eroded by radius 1 leaves the single centre pixel.
        assert_eq!(count(&e), 1);
        assert!(e[(5, 5)]);
    }

    #[test]
    fn zero_radius_identity() {
        let mask = Grid::from_fn(5, 5, |x, y| (x + y) % 3 == 0);
        assert_eq!(dilate(&mask, 0.0), mask);
        assert_eq!(erode(&mask, 0.0), mask);
        assert_eq!(dilate(&mask, -1.0), mask);
    }

    #[test]
    fn dilation_is_euclidean_disk() {
        let mut mask = Grid::new(15, 15, false);
        mask[(7, 7)] = true;
        let d = dilate(&mask, 3.0);
        for (p, &b) in d.enumerate() {
            let dist = (((p.x - 7).pow(2) + (p.y - 7).pow(2)) as f64).sqrt();
            assert_eq!(b, dist <= 3.0 + 1e-9, "at {p} dist {dist}");
        }
    }

    #[test]
    fn erosion_respects_border() {
        // A fully-true mask eroded by 1 loses its border ring.
        let mask = Grid::new(5, 5, true);
        let e = erode(&mask, 1.0);
        assert_eq!(count(&e), 9); // inner 3x3
        assert!(e[(2, 2)]);
        assert!(!e[(0, 2)]);
    }

    #[test]
    fn opening_removes_slivers() {
        // A 1-pixel-wide line plus a 5x5 block.
        let mut mask = Grid::new(20, 9, false);
        for x in 0..20 {
            mask[(x, 0)] = true;
        }
        for y in 3..8 {
            for x in 3..8 {
                mask[(x, y)] = true;
            }
        }
        let o = open(&mask, 1.0);
        // Line gone…
        assert!((0..20).all(|x| !o[(x, 0)]));
        // …block centre survives.
        assert!(o[(5, 5)]);
    }

    #[test]
    fn closing_fills_gaps() {
        // A 3-pixel-thick band (rows 3..6) with a one-column gap at x = 7.
        let mut mask = Grid::new(15, 9, false);
        for y in 3..6 {
            for x in 0..15 {
                if x != 7 {
                    mask[(x, y)] = true;
                }
            }
        }
        assert!(!mask[(7, 4)]);
        let c = close(&mask, 1.5);
        // Closing bridges the gap at the band centre…
        assert!(c[(7, 4)]);
        // …without inventing pixels far from the band.
        assert!(!c[(7, 0)]);
        assert!(!c[(7, 8)]);
    }

    #[test]
    fn duality_on_interior() {
        // erode(mask) == !dilate(!mask) away from the border.
        let mask = Grid::from_fn(16, 16, |x, y| ((x / 3) + (y / 2)) % 2 == 0);
        let e = erode(&mask, 1.5);
        let comp = mask.map(|&b| !b);
        let d = dilate(&comp, 1.5);
        for y in 2..14 {
            for x in 2..14 {
                assert_eq!(e[(x, y)], !d[(x, y)], "at ({x}, {y})");
            }
        }
    }
}

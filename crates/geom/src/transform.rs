//! Grid transforms: flips, quarter-turn rotations, nearest-neighbour
//! resampling.
//!
//! Used by the segmentation trainer for data augmentation (the paper's
//! Table IV Medium-1 "testing in context" implies a model trained with
//! standard augmentation) and by experiments that rescale imagery across
//! altitudes.

use crate::grid::Grid;

/// Horizontal mirror (left-right flip).
pub fn flip_horizontal<T: Clone>(grid: &Grid<T>) -> Grid<T> {
    let (w, h) = (grid.width(), grid.height());
    Grid::from_fn(w, h, |x, y| grid[(w - 1 - x, y)].clone())
}

/// Vertical mirror (top-bottom flip).
pub fn flip_vertical<T: Clone>(grid: &Grid<T>) -> Grid<T> {
    let (w, h) = (grid.width(), grid.height());
    Grid::from_fn(w, h, |x, y| grid[(x, h - 1 - y)].clone())
}

/// Rotation by `quarter_turns * 90°` counter-clockwise in image
/// coordinates.
pub fn rotate90<T: Clone>(grid: &Grid<T>, quarter_turns: u32) -> Grid<T> {
    let (w, h) = (grid.width(), grid.height());
    match quarter_turns % 4 {
        0 => grid.clone(),
        // (x, y) <- (w-1-y', x') for a single CCW turn of the index map.
        1 => Grid::from_fn(h, w, |x, y| grid[(w - 1 - y, x)].clone()),
        2 => Grid::from_fn(w, h, |x, y| grid[(w - 1 - x, h - 1 - y)].clone()),
        3 => Grid::from_fn(h, w, |x, y| grid[(y, h - 1 - x)].clone()),
        _ => unreachable!(),
    }
}

/// One of the eight axis-aligned symmetries (dihedral group D4),
/// enumerated for augmentation sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dihedral {
    /// Identity.
    Identity,
    /// 90° rotation.
    Rot90,
    /// 180° rotation.
    Rot180,
    /// 270° rotation.
    Rot270,
    /// Horizontal flip.
    FlipH,
    /// Vertical flip.
    FlipV,
    /// Transpose (flip across the main diagonal).
    Transpose,
    /// Anti-transpose (flip across the anti-diagonal).
    AntiTranspose,
}

impl Dihedral {
    /// All eight symmetries.
    pub const ALL: [Dihedral; 8] = [
        Dihedral::Identity,
        Dihedral::Rot90,
        Dihedral::Rot180,
        Dihedral::Rot270,
        Dihedral::FlipH,
        Dihedral::FlipV,
        Dihedral::Transpose,
        Dihedral::AntiTranspose,
    ];

    /// Applies the symmetry to a grid.
    pub fn apply<T: Clone>(self, grid: &Grid<T>) -> Grid<T> {
        match self {
            Dihedral::Identity => grid.clone(),
            Dihedral::Rot90 => rotate90(grid, 1),
            Dihedral::Rot180 => rotate90(grid, 2),
            Dihedral::Rot270 => rotate90(grid, 3),
            Dihedral::FlipH => flip_horizontal(grid),
            Dihedral::FlipV => flip_vertical(grid),
            Dihedral::Transpose => rotate90(&flip_horizontal(grid), 1),
            Dihedral::AntiTranspose => rotate90(&flip_horizontal(grid), 3),
        }
    }
}

/// Nearest-neighbour resampling to a new size.
///
/// # Panics
///
/// Panics if the source grid or the target size is empty.
pub fn resize_nearest<T: Clone>(grid: &Grid<T>, new_w: usize, new_h: usize) -> Grid<T> {
    assert!(!grid.is_empty(), "cannot resample an empty grid");
    assert!(new_w > 0 && new_h > 0, "target size must be positive");
    let (w, h) = (grid.width(), grid.height());
    Grid::from_fn(new_w, new_h, |x, y| {
        let sx = ((x as f64 + 0.5) * w as f64 / new_w as f64) as usize;
        let sy = ((y as f64 + 0.5) * h as f64 / new_h as f64) as usize;
        grid[(sx.min(w - 1), sy.min(h - 1))].clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grid<u32> {
        Grid::from_fn(3, 2, |x, y| (10 * y + x) as u32)
    }

    #[test]
    fn flips_are_involutions() {
        let g = sample();
        assert_eq!(flip_horizontal(&flip_horizontal(&g)), g);
        assert_eq!(flip_vertical(&flip_vertical(&g)), g);
        assert_eq!(flip_horizontal(&g)[(0, 0)], g[(2, 0)]);
        assert_eq!(flip_vertical(&g)[(0, 0)], g[(0, 1)]);
    }

    #[test]
    fn rotation_composes() {
        let g = sample();
        let r1 = rotate90(&g, 1);
        assert_eq!(r1.width(), 2);
        assert_eq!(r1.height(), 3);
        assert_eq!(rotate90(&r1, 3), g, "four quarter turns = identity");
        assert_eq!(rotate90(&g, 2), rotate90(&rotate90(&g, 1), 1));
        assert_eq!(rotate90(&g, 4), g);
        assert_eq!(rotate90(&g, 5), rotate90(&g, 1));
    }

    #[test]
    fn rotate90_moves_corner_correctly() {
        let g = sample();
        // CCW in index space: the top-right corner goes to the top-left.
        let r = rotate90(&g, 1);
        assert_eq!(r[(0, 0)], g[(2, 0)]);
    }

    #[test]
    fn dihedral_elements_are_distinct_on_generic_grid() {
        let g = Grid::from_fn(3, 3, |x, y| (10 * y + x) as u32);
        let images: Vec<_> = Dihedral::ALL.iter().map(|d| d.apply(&g)).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(
                    images[i],
                    images[j],
                    "{:?} == {:?}",
                    Dihedral::ALL[i],
                    Dihedral::ALL[j]
                );
            }
        }
    }

    #[test]
    fn dihedral_preserves_multiset() {
        let g = Grid::from_fn(4, 3, |x, y| (7 * y + x) as u32);
        for d in Dihedral::ALL {
            let t = d.apply(&g);
            let mut a: Vec<_> = g.iter().copied().collect();
            let mut b: Vec<_> = t.iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{d:?} changed pixel contents");
        }
    }

    #[test]
    fn resize_identity_and_scaling() {
        let g = sample();
        assert_eq!(resize_nearest(&g, 3, 2), g);
        let up = resize_nearest(&g, 6, 4);
        assert_eq!(up[(0, 0)], g[(0, 0)]);
        assert_eq!(up[(5, 3)], g[(2, 1)]);
        let down = resize_nearest(&up, 3, 2);
        assert_eq!(down, g);
    }

    #[test]
    #[should_panic(expected = "target size must be positive")]
    fn resize_to_zero_rejected() {
        let _ = resize_nearest(&sample(), 0, 2);
    }
}

//! # certel — certifiable emergency landing for urban UAVs
//!
//! A comprehensive Rust reproduction of *Certifying Emergency Landing for
//! Safe Urban UAV* (Guerin, Delmas, Guiochet — DSN 2021,
//! arXiv:2104.14928). The stack contains every system the paper describes
//! or depends on:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`el_geom`] | grids, label maps, distance transforms, morphology |
//! | [`el_nn`] | from-scratch tensors, dilated convolutions, dropout, backprop |
//! | [`el_scene`] | procedural UAVid-like urban scenes, conditions, datasets |
//! | [`el_seg`] | the MSDnet-style segmenter, trainer and metrics |
//! | [`el_monitor`] | Monte-Carlo-dropout Bayesian runtime monitor (Eq. 2) |
//! | [`el_core`] | landing-zone selection, drift buffers, the Figure 2 pipeline, Table III/IV requirements |
//! | [`el_sora`] | the SORA v2.0 engine and the MEDI DELIVERY case study |
//! | [`el_uavsim`] | the Figure 1 safety switch, failure injection, campaigns |
//! | [`el_riskmap`] | the persistent cross-fleet ground-risk map with decayed accumulation |
//! | [`el_serve`] | the resident multi-stream service with cross-stream batching |
//!
//! This facade re-exports the whole public API and provides
//! [`PipelineElSystem`], the adapter that mounts the real Figure 2
//! perception pipeline into the flight simulator for closed-loop
//! failure-injection experiments.
//!
//! ## Quickstart
//!
//! ```no_run
//! use certel::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // 1. A synthetic urban world and a training set.
//! let dataset = Dataset::generate(&DatasetConfig::benchmark(1));
//!
//! // 2. Train the MSDnet core function.
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = MsdNet::new(&MsdNetConfig::default_uavid(), &mut rng);
//! Trainer::new(TrainConfig::benchmark()).train(&mut net, &dataset);
//!
//! // 3. Run the certified landing pipeline on an emergency frame.
//! let mut pipeline = ElPipeline::try_new(net, PipelineConfig::paper()).unwrap();
//! let scene = Scene::generate(&SceneParams::default_urban(), 99);
//! let image = scene.render(&Conditions::nominal(), 7);
//! match pipeline.run(&image, 42).decision {
//!     FinalDecision::Land(zone) => println!("land at {}", zone.center),
//!     FinalDecision::Abort(reason) => println!("abort: {reason:?}"),
//! }
//! ```

pub use el_core;
pub use el_geom;
pub use el_kernels;
pub use el_metrics;
pub use el_monitor;
pub use el_nn;
pub use el_riskmap;
pub use el_scene;
pub use el_seg;
pub use el_serve;
pub use el_sora;
pub use el_uavsim;

pub mod adapter;

pub use adapter::PipelineElSystem;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::adapter::PipelineElSystem;
    pub use el_core::screen_candidates;
    pub use el_core::{
        assess_zone, audit_seed, propose_zones, AssuranceEvidence, AssuranceLevel, AuditConfig,
        AuditRegion, AuditReport, Candidate, DriftModel, ElOutcome, ElPipeline, FinalDecision,
        IntegrityLevel, PipelineConfig, PipelineConfigError, RiskConfig, RiskScreen, TileAuditStat,
        ZoneParams,
    };
    pub use el_geom::{Grid, LabelMap, Point, Rect, SemanticClass, Vec2};
    // The kernel selection surface: one typed policy (tier × contract)
    // instead of an env-string. Quantised GEMM internals stay private to
    // `el_kernels`.
    pub use el_kernels::{
        ApproxRung, Contract, KernelError, KernelPolicy, KernelTier, TierSelection,
    };
    pub use el_metrics::{MetricsRegistry, MetricsSnapshot};
    pub use el_monitor::{
        bayesian_segment, AuditPrecision, BayesStats, Monitor, MonitorConfig, MonitorQuality,
        MonitorRule, PrecisionOutcome, Verdict,
    };
    pub use el_riskmap::{HotRegion, RiskMap, RiskMapConfig, RiskMapSnapshot, RiskObservation};
    pub use el_scene::{Camera, Conditions, Dataset, DatasetConfig, Scene, SceneParams, Split};
    pub use el_seg::{segment, ConfusionMatrix, MsdNet, MsdNetConfig, TrainConfig, Trainer};
    pub use el_serve::{
        generate_streams, run_load, AdmissionConfig, CostModel, DriftConfig, ElService,
        FrameRequest, LoadConfig, RiskSettings, ServeConfig, SessionSummary, TerrainMode,
        TickClock,
    };
    pub use el_sora::hazard::HazardCategory;
    pub use el_sora::{
        medi_delivery, Arc, ElMitigation, Mitigation, Robustness, Sail, Severity, SoraAssessment,
    };
    pub use el_uavsim::{
        AuditAdvisory, BinomialInterval, Campaign, CampaignConfig, CampaignConfigError,
        CampaignReport, ElPolicy, ElSystem, FailureRates, HazardPower, Maneuver, Mission,
        MissionConfig, MissionEvent, MissionRecord, NoEl, NoisyEl, PerfectEl, PowerConfig,
        PowerReport, Scenario, ScenarioError, ScenarioOutcome, ScheduledFault, TerminalState, Wind,
    };
}

//! Mounting the Figure 2 perception pipeline into the flight simulator.

use el_core::{AuditReport, ElPipeline, FinalDecision};
use el_geom::{Rect, Vec2};
use el_scene::{Conditions, Scene};
use el_uavsim::{AuditAdvisory, ElSystem};

/// Adapts the real [`ElPipeline`] (MSDnet core function + Bayesian
/// monitor + decision module) to the simulator's [`ElSystem`] interface.
///
/// On an emergency-landing request, the adapter renders what the on-board
/// camera would see — a window of the scene around the UAV under the
/// mission's [`Conditions`] — runs the full Figure 2 loop on it, and maps
/// a confirmed zone back to metric scene coordinates. An abort decision
/// becomes `None`, which the safety switch escalates to flight
/// termination, exactly as the paper's architecture prescribes.
#[derive(Debug)]
pub struct PipelineElSystem {
    pipeline: ElPipeline,
    conditions: Conditions,
    /// The whole-frame audit of the most recent run (when audit mode is
    /// enabled on the pipeline) — the advisory escalation source the
    /// simulator's safety switch consults before committing a landing.
    last_audit: Option<AuditReport>,
}

impl PipelineElSystem {
    /// Wraps a pipeline; `conditions` model the lighting/weather at the
    /// time of the emergency (use [`Conditions::sunset`] for the paper's
    /// OOD scenario).
    pub fn new(pipeline: ElPipeline, conditions: Conditions) -> Self {
        PipelineElSystem {
            pipeline,
            conditions,
            last_audit: None,
        }
    }

    /// The rendering conditions.
    pub fn conditions(&self) -> &Conditions {
        &self.conditions
    }

    /// Borrows the inner pipeline.
    pub fn pipeline_mut(&mut self) -> &mut ElPipeline {
        &mut self.pipeline
    }

    /// The whole-frame audit report of the most recent
    /// [`ElSystem::select_landing`] call, if audit mode produced one.
    pub fn last_audit(&self) -> Option<&AuditReport> {
        self.last_audit.as_ref()
    }
}

impl ElSystem for PipelineElSystem {
    fn select_landing(
        &mut self,
        scene: &Scene,
        uav_xy_m: Vec2,
        view_radius_m: f64,
        seed: u64,
    ) -> Option<Vec2> {
        let mpp = scene.params.meters_per_pixel;
        let view_px = (view_radius_m / mpp).round() as i64;
        let cx = (uav_xy_m.x / mpp).round() as i64;
        let cy = (uav_xy_m.y / mpp).round() as i64;
        let window = Rect::new(cx - view_px, cy - view_px, 2 * view_px + 1, 2 * view_px + 1)
            .intersect(scene.labels.bounds());
        if window.is_empty() {
            return None;
        }
        // What the camera sees: the windowed scene under the mission's
        // conditions. Rendering the full scene and cropping keeps the
        // texture field identical to the world's.
        let full = scene.render(&self.conditions, seed);
        let image = full.crop(window).expect("window clipped to bounds");
        let outcome = self.pipeline.run(&image, seed);
        self.last_audit = outcome.audit;
        match outcome.decision {
            FinalDecision::Land(zone) => {
                let px = zone.center.x + window.x;
                let py = zone.center.y + window.y;
                Some(Vec2::new(px as f64 * mpp, py as f64 * mpp))
            }
            FinalDecision::Abort(_) => None,
        }
    }

    fn audit_advisory(&self) -> AuditAdvisory {
        match &self.last_audit {
            None => AuditAdvisory::Clear,
            // The report's σ-inflation margin (zero for exact audits)
            // pads the warning fraction, so an approximate-contract
            // audit escalates at least as eagerly as the exact path.
            Some(a) => AuditAdvisory::classify_with_margin(
                a.coverage(),
                a.warning_fraction,
                a.precision.sigma_margin as f64,
            ),
        }
    }

    fn name(&self) -> &'static str {
        "pipeline-el"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_core::PipelineConfig;
    use el_scene::SceneParams;
    use el_seg::{MsdNet, MsdNetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn adapter() -> PipelineElSystem {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
        PipelineElSystem::new(
            ElPipeline::try_new(net, PipelineConfig::fast_test()).expect("valid config"),
            Conditions::nominal(),
        )
    }

    #[test]
    fn returns_point_inside_scene_or_none() {
        let scene = Scene::generate(&SceneParams::small(), 5);
        let mut el = adapter();
        let pick = el.select_landing(&scene, Vec2::new(24.0, 24.0), 20.0, 3);
        if let Some(p) = pick {
            let (w, h) = (
                scene.width() as f64 * scene.params.meters_per_pixel,
                scene.height() as f64 * scene.params.meters_per_pixel,
            );
            assert!(p.x >= 0.0 && p.x < w);
            assert!(p.y >= 0.0 && p.y < h);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let scene = Scene::generate(&SceneParams::small(), 6);
        let mut el = adapter();
        let a = el.select_landing(&scene, Vec2::new(20.0, 20.0), 18.0, 9);
        let b = el.select_landing(&scene, Vec2::new(20.0, 20.0), 18.0, 9);
        assert_eq!(a, b);
        assert_eq!(el.name(), "pipeline-el");
    }

    #[test]
    fn audit_mode_surfaces_advisory() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
        let config =
            PipelineConfig::fast_test().with_audit(el_core::audit::AuditConfig::fast_test());
        let mut el = PipelineElSystem::new(
            ElPipeline::try_new(net, config).expect("valid config"),
            Conditions::nominal(),
        );
        // Before any run there is no audit and the advisory defaults Clear.
        assert!(el.last_audit().is_none());
        assert_eq!(el.audit_advisory(), AuditAdvisory::Clear);
        let scene = Scene::generate(&SceneParams::small(), 5);
        let _ = el.select_landing(&scene, Vec2::new(24.0, 24.0), 20.0, 3);
        let audit = el.last_audit().expect("audit mode attaches a report");
        // The unlimited test budget audits the whole camera window, so
        // the advisory is classifiable (an untrained tiny net warns
        // widely — any grade is legal, it just must be derived).
        assert!(audit.is_complete());
        // An exact audit carries a zero margin, so the margin-aware
        // classification reduces to the plain one.
        assert_eq!(audit.precision.sigma_margin, 0.0);
        assert_eq!(
            el.audit_advisory(),
            AuditAdvisory::classify(audit.coverage(), audit.warning_fraction)
        );
    }

    #[test]
    fn window_outside_scene_returns_none() {
        let scene = Scene::generate(&SceneParams::small(), 7);
        let mut el = adapter();
        let pick = el.select_landing(&scene, Vec2::new(-500.0, -500.0), 5.0, 0);
        assert_eq!(pick, None);
    }
}

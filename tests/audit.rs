//! Integration properties of the whole-frame audit mode.
//!
//! These tests pin the audit PR's headline guarantees **through the
//! pipeline entry point** (not just the standalone sweep):
//!
//! 1. **Strictly advisory**: `ElOutcome.decision` and `.trials` with the
//!    audit on are bit-identical to the audit off, for random frames and
//!    seeds — the audit runs after the decision is fixed and never feeds
//!    back into it.
//! 2. **Budget semantics under a fake clock**: the report is well-formed
//!    at every budget including zero, coverage is monotone in the
//!    budget, and candidate-zone tiles are audited first.
//! 3. **Exactness**: an unexpired budget reproduces the untiled
//!    [`bayesian_segment`] statistics bit for bit at the audit's derived
//!    seed ([`audit_seed`]).
//!
//! As in `tests/properties.rs`, properties run as seeded-RNG loops
//! (no proptest in the build environment).

use certel::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

mod common;
use common::expected_admitted;

fn tiny_net(seed: u64) -> MsdNet {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    MsdNet::new(&MsdNetConfig::tiny(), &mut r)
}

fn scene_image(seed: u64, w: usize, h: usize) -> certel::el_scene::Image {
    let mut p = SceneParams::small();
    p.width = w;
    p.height = h;
    Scene::generate(&p, seed).render(&Conditions::nominal(), seed)
}

fn audited_config() -> PipelineConfig {
    PipelineConfig::fast_test().with_audit(AuditConfig::fast_test())
}

/// Audit on vs audit off: the landing decision and every trial are
/// bit-identical across random frames and seeds — the audit is strictly
/// advisory.
#[test]
fn audit_never_changes_the_decision() {
    let mut r = ChaCha8Rng::seed_from_u64(0xA0D1);
    for case in 0..4u64 {
        let image = scene_image(60 + case, 56, 48);
        let seed = r.gen::<u64>();
        let mut plain =
            ElPipeline::try_new(tiny_net(case), PipelineConfig::fast_test()).expect("valid config");
        let mut audited =
            ElPipeline::try_new(tiny_net(case), audited_config()).expect("valid config");
        let a = plain.run(&image, seed);
        let b = audited.run(&image, seed);
        assert_eq!(a.decision, b.decision, "case {case}: decision diverged");
        assert_eq!(a.trials, b.trials, "case {case}: trials diverged");
        assert_eq!(a.predicted, b.predicted);
        assert!(a.audit.is_none());
        let audit = b.audit.expect("audit enabled");
        assert!(audit.is_complete(), "test budget must not expire");
    }
}

/// The report is well-formed at every budget from zero to complete under
/// a deterministic fake clock (admitted counts following the predictive
/// admission policy exactly — see [`expected_admitted`]), coverage and
/// the covered mask are monotone in the budget, and the decision stays
/// bit-identical to the audit-off pipeline throughout.
#[test]
fn audit_budget_semantics_under_fake_clock() {
    let image = scene_image(9, 60, 48);
    let seed = 21u64;
    let baseline = ElPipeline::try_new(tiny_net(7), PipelineConfig::fast_test())
        .expect("valid config")
        .run(&image, seed);

    // Discover the plan size with an unexpired budget.
    let full = ElPipeline::try_new(tiny_net(7), audited_config())
        .expect("valid config")
        .run(&image, seed)
        .audit
        .expect("audit enabled");
    assert!(full.is_complete());
    let tiles_total = full.tiles_total();
    assert!(tiles_total > 1, "frame must tile into several audit tiles");

    let mut prev_covered: Option<Grid<bool>> = None;
    let mut prev_coverage = -1.0f64;
    let mut seen_complete = false;
    // Predictive admission trades roughly one tile of the old
    // one-per-tick schedule for its overrun guarantee, so budgets up to
    // tiles_total + 1 are needed to reach completeness.
    for budget in 0..=tiles_total + 1 {
        let budget_s = (budget as f64 - 0.5).max(0.0);
        let expected = expected_admitted(budget_s, tiles_total);
        let mut config = audited_config();
        config.audit.budget_s = budget_s;
        let mut p = ElPipeline::try_new(tiny_net(7), config).expect("valid config");
        let mut t = -1.0f64;
        let out = p.run_with_audit_clock(&image, seed, move || {
            t += 1.0;
            t
        });
        // The decision path never reads the clock.
        assert_eq!(out.decision, baseline.decision, "budget {budget}");
        assert_eq!(out.trials, baseline.trials, "budget {budget}");
        let audit = out.audit.expect("audit enabled");
        assert_eq!(
            audit.tiles_verified(),
            expected,
            "budget {budget}: admitted tiles must follow the predictive policy"
        );
        assert!(
            audit.tiles_verified() <= budget,
            "prediction never admits more than the old one-per-tick policy"
        );
        seen_complete |= audit.is_complete();
        assert_eq!(audit.tiles_total(), tiles_total);
        assert_eq!(audit.tile_stats.len(), expected);
        // Well-formed at every truncation: finite statistics, fractions
        // in range, regions within the frame and at least the configured
        // size.
        assert!(audit.coverage() >= 0.0 && audit.coverage() <= 1.0);
        assert!(audit.warning_fraction >= 0.0 && audit.warning_fraction <= 1.0);
        assert!(audit
            .tiled
            .stats
            .mean
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
        assert!(audit
            .tiled
            .stats
            .std
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
        let bounds = Rect::new(0, 0, image.width() as i64, image.height() as i64);
        for region in &audit.regions {
            assert!(bounds.contains_rect(region.bbox));
            assert!(region.area >= p.config().audit.min_region_px);
            assert!(region.mean_sigma.is_finite() && region.mean_sigma >= 0.0);
        }
        for ts in &audit.tile_stats {
            assert!(bounds.contains_rect(ts.rect));
            assert!(ts.warning_fraction >= 0.0 && ts.warning_fraction <= 1.0);
        }
        // Monotone coverage: every pixel covered at budget b stays
        // covered at b+1, and the audited values are the exact full-frame
        // values.
        assert!(
            audit.coverage() >= prev_coverage,
            "coverage must be monotone"
        );
        prev_coverage = audit.coverage();
        if let Some(prev) = &prev_covered {
            for (a, b) in prev.iter().zip(audit.tiled.covered.iter()) {
                assert!(!a || *b, "covered mask must be monotone in the budget");
            }
        }
        for (i, (&v, &c)) in full
            .tiled
            .stats
            .std
            .as_slice()
            .iter()
            .zip(audit.tiled.stats.std.as_slice())
            .enumerate()
        {
            // Zero outside coverage is checked via the sweep tests; here
            // we check audited values match the complete sweep exactly.
            let hw = image.width() * image.height();
            let (x, y) = ((i % hw) % image.width(), (i % hw) / image.width());
            if audit.tiled.covered[(x, y)] {
                assert_eq!(v, c, "audited σ diverges from the complete sweep");
            }
        }
        prev_covered = Some(audit.tiled.covered.clone());
    }
    assert!(seen_complete, "the largest budget must complete the sweep");
}

/// Zero budget: the audit attaches an empty but well-formed report and
/// the decision is untouched.
#[test]
fn zero_budget_audit_is_empty_but_wellformed() {
    let image = scene_image(31, 48, 40);
    let mut config = audited_config();
    config.audit.budget_s = 0.0;
    let mut p = ElPipeline::try_new(tiny_net(3), config).expect("valid config");
    let out = p.run_with_audit_clock(&image, 5, || 1.0);
    let audit = out.audit.expect("audit enabled");
    assert_eq!(audit.tiles_verified(), 0);
    assert_eq!(audit.coverage(), 0.0);
    assert_eq!(audit.warning_fraction, 0.0);
    assert!(audit.tile_stats.is_empty());
    assert!(audit.regions.is_empty());
    assert!(audit.tiled.stats.mean.as_slice().iter().all(|&v| v == 0.0));
    let baseline = ElPipeline::try_new(tiny_net(3), PipelineConfig::fast_test())
        .expect("valid config")
        .run(&image, 5);
    assert_eq!(out.decision, baseline.decision);
    assert_eq!(out.trials, baseline.trials);
}

/// An unexpired budget reproduces the untiled whole-frame Bayesian pass
/// bit for bit through the pipeline entry point, at the audit's derived
/// seed.
#[test]
fn unexpired_audit_equals_untiled_bayesian_segment() {
    let net = tiny_net(11);
    let reference_net = net.clone();
    let image = scene_image(13, 52, 44);
    let seed = 77u64;
    let mut p = ElPipeline::try_new(net, audited_config()).expect("valid config");
    let samples = p.config().audit.samples;
    let audit = p.run(&image, seed).audit.expect("audit enabled");
    assert!(audit.is_complete());
    assert!(audit.tiled.covered.iter().all(|&c| c));
    let whole = bayesian_segment(&reference_net, &image, samples, audit_seed(seed));
    assert_eq!(
        audit.tiled.stats.mean.as_slice(),
        whole.mean.as_slice(),
        "audit mean diverges from the untiled pass"
    );
    assert_eq!(
        audit.tiled.stats.std.as_slice(),
        whole.std.as_slice(),
        "audit std diverges from the untiled pass"
    );
}

/// Candidate zones steer the audit: under a tight budget the first
/// audited tile covers a candidate's rectangle whenever candidates
/// exist.
#[test]
fn candidate_tiles_audited_first_under_tight_budget() {
    let mut with_candidates = 0usize;
    for case in 0..4u64 {
        let image = scene_image(40 + case, 64, 56);
        let mut config = audited_config();
        config.audit.budget_s = 0.5; // fake clock admits exactly one tile
        let mut p = ElPipeline::try_new(tiny_net(case), config).expect("valid config");
        let mut t = -1.0f64;
        let out = p.run_with_audit_clock(&image, 8 + case, move || {
            t += 1.0;
            t
        });
        let candidates = propose_zones(&out.predicted, &p.config().zone);
        let audit = out.audit.expect("audit enabled");
        assert_eq!(audit.tiles_verified(), 1);
        if candidates.is_empty() {
            continue;
        }
        with_candidates += 1;
        let first = &audit.tile_stats[0];
        assert!(
            candidates.iter().any(|c| first.rect.intersects(c.rect)),
            "case {case}: first audited tile misses every candidate zone"
        );
    }
    assert!(
        with_candidates > 0,
        "at least one case must propose candidates"
    );
}

//! Integration properties of the batched and tiled Bayesian paths.
//!
//! These tests pin the PR's two headline guarantees:
//!
//! 1. **Batching is free of semantic drift**: `Monitor::verify_batch`
//!    (one shared rayon work queue, cache-budgeted column-stacked prefix
//!    GEMMs, pooled scratch arenas) is bit-identical to N sequential
//!    `Monitor::verify` calls with the same per-crop seeds.
//! 2. **Tiling is exact, not approximate**: `bayesian_segment_tiled`
//!    with an unexpired budget equals untiled `bayesian_segment` bit for
//!    bit, and a budget-truncated pass returns a well-formed prefix of
//!    that exact answer (consistent coverage mask, no NaNs, coverage
//!    monotone in the budget).
//!
//! As in `tests/properties.rs`, properties run as seeded-RNG loops
//! (no proptest in the build environment).

use certel::prelude::*;
use el_geom::Grid;

mod common;
use common::expected_admitted;
use el_monitor::{
    bayesian_segment, bayesian_segment_batch, bayesian_segment_tensor_at,
    bayesian_segment_tiled_with_clock, BATCH_SEED_STRIDE,
};
use el_nn::Tensor;
use el_seg::data::image_to_tensor;
use el_seg::TileConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xBA7C)
}

fn tiny_net(seed: u64) -> MsdNet {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    MsdNet::new(&MsdNetConfig::tiny(), &mut r)
}

fn scene_image(seed: u64, w: usize, h: usize) -> el_scene::Image {
    let mut p = SceneParams::small();
    p.width = w;
    p.height = h;
    Scene::generate(&p, seed).render(&Conditions::nominal(), seed)
}

/// `verify_batch` is bit-identical to N sequential `verify` calls with
/// the derived per-crop seeds, across random batch sizes, crop shapes
/// and seeds.
#[test]
fn verify_batch_matches_sequential_verifies() {
    let mut r = rng();
    let net = tiny_net(1);
    let monitor = Monitor::new(MonitorConfig {
        samples: 5,
        ..MonitorConfig::paper()
    });
    for case in 0..6 {
        let n = r.gen_range(1usize..6);
        let crops: Vec<el_scene::Image> = (0..n)
            .map(|i| {
                let w = r.gen_range(8usize..28);
                let h = r.gen_range(8usize..28);
                scene_image(case * 31 + i as u64, w, h)
            })
            .collect();
        let seed = r.gen::<u64>();
        let batch = monitor.verify_batch(&net, &crops, seed);
        assert_eq!(batch.len(), crops.len());
        for (i, (crop, report)) in crops.iter().zip(&batch).enumerate() {
            let crop_seed = seed.wrapping_add((i as u64 + 1).wrapping_mul(BATCH_SEED_STRIDE));
            let single = monitor.verify(&net, crop, crop_seed);
            assert_eq!(
                single.stats.mean.as_slice(),
                report.stats.mean.as_slice(),
                "case {case} crop {i}: batch mean diverges"
            );
            assert_eq!(
                single.stats.std.as_slice(),
                report.stats.std.as_slice(),
                "case {case} crop {i}: batch std diverges"
            );
            assert_eq!(single.warning_map, report.warning_map);
            assert_eq!(single.verdict, report.verdict);
        }
    }
    // Production-shaped case: the paper-config network with
    // candidate-zone-sized crops crosses the engine's stacked-suffix
    // cache budget, so this covers the per-crop work-queue branch that
    // real pipeline batches take.
    let mut r2 = ChaCha8Rng::seed_from_u64(9);
    let paper_net = MsdNet::new(&MsdNetConfig::default_uavid(), &mut r2);
    let crops: Vec<el_scene::Image> = (0..2).map(|i| scene_image(900 + i, 48, 48)).collect();
    let batch = monitor.verify_batch(&paper_net, &crops, 77);
    for (i, (crop, report)) in crops.iter().zip(&batch).enumerate() {
        let crop_seed = 77u64.wrapping_add((i as u64 + 1).wrapping_mul(BATCH_SEED_STRIDE));
        let single = monitor.verify(&paper_net, crop, crop_seed);
        assert_eq!(
            single.stats.mean.as_slice(),
            report.stats.mean.as_slice(),
            "paper-config crop {i}: batch mean diverges"
        );
        assert_eq!(single.stats.std.as_slice(), report.stats.std.as_slice());
        assert_eq!(single.verdict, report.verdict);
    }
}

/// The bayes-level batch with explicit per-crop seeds and origins is
/// bit-identical to per-crop invocations.
#[test]
fn bayesian_batch_matches_per_crop() {
    let mut r = rng();
    let net = tiny_net(2);
    for case in 0..5 {
        let n = r.gen_range(1usize..5);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| {
                let w = r.gen_range(4usize..20);
                let h = r.gen_range(4usize..20);
                let f = r.gen_range(0.05f32..0.4);
                Tensor::from_fn(3, h, w, move |c, y, x| ((c + y * 2 + x) as f32 * f).sin())
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let seeds: Vec<u64> = (0..n).map(|_| r.gen()).collect();
        let origins: Vec<(usize, usize)> = (0..n)
            .map(|_| (r.gen_range(0usize..100), r.gen_range(0usize..100)))
            .collect();
        let samples = r.gen_range(1usize..9);
        let batch = bayesian_segment_batch(&net, &refs, samples, &seeds, &origins);
        for (((input, &seed), &origin), stats) in
            inputs.iter().zip(&seeds).zip(&origins).zip(&batch)
        {
            let single = bayesian_segment_tensor_at(&net, input, samples, seed, origin);
            assert_eq!(
                single.mean.as_slice(),
                stats.mean.as_slice(),
                "case {case}: batch mean diverges at origin {origin:?}"
            );
            assert_eq!(single.std.as_slice(), stats.std.as_slice());
        }
    }
}

/// An unexpired budget makes the tiled pass bit-identical to the untiled
/// whole-frame pass — on every pixel, not just tile interiors, because
/// the margin absorbs seam effects and the masks are coordinate-keyed.
#[test]
fn tiled_with_infinite_budget_equals_untiled() {
    let net = tiny_net(3);
    for (w, h, tile) in [(50usize, 39usize, 24usize), (64, 64, 32), (45, 60, 24)] {
        let img = scene_image(7, w, h);
        let config = TileConfig { tile, margin: 4 };
        let tiled = el_monitor::bayesian_segment_tiled(
            &net,
            &img,
            config,
            6,
            21,
            Duration::from_secs(86_400),
            &[],
        );
        assert!(tiled.is_complete(), "{w}x{h}: budget should never expire");
        assert!((tiled.coverage() - 1.0).abs() < 1e-12);
        let whole = bayesian_segment(&net, &img, 6, 21);
        assert_eq!(
            tiled.stats.mean.as_slice(),
            whole.mean.as_slice(),
            "{w}x{h}: tiled mean diverges from untiled"
        );
        assert_eq!(
            tiled.stats.std.as_slice(),
            whole.std.as_slice(),
            "{w}x{h}: tiled std diverges from untiled"
        );
    }
}

/// Budget-truncated passes are well-formed: the coverage mask exactly
/// delimits the populated statistics (probability distributions inside,
/// hard zeros outside, NaNs nowhere), and coverage is monotone in the
/// budget with bit-identical values on shared coverage.
#[test]
fn partial_coverage_is_well_formed_and_monotone() {
    let net = tiny_net(4);
    let img = scene_image(9, 60, 48);
    let config = TileConfig {
        tile: 24,
        margin: 4,
    };
    // Deterministic fake clock: one tick per admission poll; admitted
    // counts follow the predictive admission policy exactly.
    let run = |budget: f64| {
        let mut t = -1.0f64;
        bayesian_segment_tiled_with_clock(&net, &img, config, 4, 13, budget, &[], move || {
            t += 1.0;
            t
        })
    };
    let full = run(f64::INFINITY);
    assert!(full.is_complete());
    let mut prev_covered: Option<Grid<bool>> = None;
    for budget in 0..=full.tiles_total + 1 {
        let out = run(budget as f64 - 0.5);
        assert_eq!(
            out.tiles_verified,
            expected_admitted(budget as f64 - 0.5, full.tiles_total),
            "admitted tiles must follow the predictive policy (budget {budget})"
        );
        let (c, hh, ww) = out.stats.mean.shape();
        assert_eq!((hh, ww), (img.height(), img.width()));
        // Mask ↔ statistics consistency, and no NaNs anywhere.
        assert!(out.stats.mean.as_slice().iter().all(|v| v.is_finite()));
        assert!(out.stats.std.as_slice().iter().all(|v| v.is_finite()));
        for y in 0..hh {
            for x in 0..ww {
                let covered = out.covered[(x, y)];
                let sum: f32 = (0..c)
                    .map(|k| out.stats.mean.as_slice()[k * hh * ww + y * ww + x])
                    .sum();
                if covered {
                    assert!(
                        (sum - 1.0).abs() < 1e-4,
                        "covered pixel ({x},{y}) mean sums to {sum}"
                    );
                    // Covered pixels carry the exact full-frame values.
                    for k in 0..c {
                        let i = k * hh * ww + y * ww + x;
                        assert_eq!(out.stats.mean.as_slice()[i], full.stats.mean.as_slice()[i]);
                        assert_eq!(out.stats.std.as_slice()[i], full.stats.std.as_slice()[i]);
                    }
                } else {
                    assert_eq!(sum, 0.0, "uncovered pixel ({x},{y}) must stay zero");
                }
            }
        }
        // Coverage grows monotonically with the budget.
        if let Some(prev) = &prev_covered {
            for (a, b) in prev.iter().zip(out.covered.iter()) {
                assert!(!a || *b, "coverage must be monotone in the budget");
            }
        }
        prev_covered = Some(out.covered);
    }
}

/// Candidate-zone tiles are verified before background tiles, so a tight
/// budget still covers the safety-relevant regions.
#[test]
fn priority_rects_covered_before_background() {
    let net = tiny_net(5);
    let img = scene_image(11, 72, 72);
    let config = TileConfig {
        tile: 24,
        margin: 4,
    };
    let zone = Rect::new(50, 50, 12, 12);
    // Count how many tiles keep a piece of the zone.
    let tiles = el_seg::plan_tiles(img.width(), img.height(), config);
    let priority_tiles = tiles
        .iter()
        .filter(|t| t.keep_rect().intersects(zone))
        .count();
    assert!(priority_tiles >= 1);
    // Smallest fake-clock budget whose predictive admission covers every
    // priority tile (counts step by at most one per budget tick, so the
    // admitted count lands exactly on priority_tiles).
    let budget = (0..=2 * tiles.len())
        .map(|b| b as f64 - 0.5)
        .find(|&b| expected_admitted(b, tiles.len()) >= priority_tiles)
        .expect("some budget admits every priority tile");
    let mut t = -1.0f64;
    let out =
        bayesian_segment_tiled_with_clock(&net, &img, config, 4, 17, budget, &[zone], move || {
            t += 1.0;
            t
        });
    assert_eq!(out.tiles_verified, priority_tiles);
    for p in zone.pixels() {
        assert!(
            out.covered[(p.x as usize, p.y as usize)],
            "zone pixel {p} not covered by the priority pass"
        );
    }
    assert!(
        out.coverage() < 1.0,
        "budget must not cover the whole frame"
    );
}

/// The pipeline's batched verification leaves its public determinism
/// contract intact end to end (same image + seed → same decision and
/// trials), including across pipeline instances.
#[test]
fn pipeline_batching_stays_deterministic() {
    let mut r = rng();
    for case in 0..3 {
        let seed = r.gen::<u64>();
        let image = scene_image(40 + case, 48, 48);
        let mut rng1 = ChaCha8Rng::seed_from_u64(case);
        let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng1);
        let mut p1 = ElPipeline::try_new(net, PipelineConfig::fast_test()).expect("valid config");
        let mut rng2 = ChaCha8Rng::seed_from_u64(case);
        let net2 = MsdNet::new(&MsdNetConfig::tiny(), &mut rng2);
        let mut p2 = ElPipeline::try_new(net2, PipelineConfig::fast_test()).expect("valid config");
        let a = p1.run(&image, seed);
        let b = p2.run(&image, seed);
        assert_eq!(a.decision, b.decision);
        assert_eq!(a.trials, b.trials);
    }
}

/// Whole-image crops of a frame verified at their true origins agree
/// with the frame: the translation-invariance property that lets the
/// monitor verify a candidate crop as if it were part of the frame.
#[test]
fn crop_at_origin_agrees_with_frame_interior() {
    let net = tiny_net(6);
    let img = scene_image(23, 40, 32);
    let whole = bayesian_segment(&net, &img, 5, 77);
    // A crop whose interior is insulated by the receptive radius.
    let rect = Rect::new(8, 6, 20, 18);
    let crop = img.crop(rect).unwrap();
    let stats = bayesian_segment_tensor_at(
        &net,
        &image_to_tensor(&crop),
        5,
        77,
        (rect.y as usize, rect.x as usize),
    );
    let radius = net.receptive_radius();
    let (c, hh, ww) = whole.mean.shape();
    let (cw, chh) = (rect.w as usize, rect.h as usize);
    let mut interior_pixels = 0usize;
    for k in 0..c {
        for y in radius..chh - radius {
            for x in radius..cw - radius {
                let frame_i = k * hh * ww + (rect.y as usize + y) * ww + (rect.x as usize + x);
                let crop_i = k * chh * cw + y * cw + x;
                assert_eq!(
                    whole.mean.as_slice()[frame_i],
                    stats.mean.as_slice()[crop_i],
                    "mean diverges at class {k} ({x},{y})"
                );
                assert_eq!(whole.std.as_slice()[frame_i], stats.std.as_slice()[crop_i]);
                interior_pixels += 1;
            }
        }
    }
    assert!(interior_pixels > 0);
}

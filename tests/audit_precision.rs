//! Integration properties of the kernel **contract classes** and the
//! approximate audit precision policy.
//!
//! These tests pin the precision PR's headline guarantees end to end:
//!
//! 1. **Exact is exact**: `Contract::Exact` resolved on *every* kernel
//!    tier the host supports reproduces the portable reference GEMM bit
//!    for bit over fuzzed shapes, and `AuditPrecision::exact()` leaves
//!    the audit report byte-identical to the pre-precision audit.
//! 2. **Bounded approximation**: the f16 and int8 GEMM rungs stay
//!    within an analytically derived error bound over ~200 fuzzed
//!    shapes — the bound follows the documented quantisation scheme
//!    (per-row / per-[`INT8_GROUP_COLS`]-group symmetric scales,
//!    round-to-nearest binary16), so a scheme change that widens the
//!    error breaks the test.
//! 3. **Escalate-only**: with a calibrated σ-inflation margin, every
//!    tile the exact audit flags is also flagged by the approximate
//!    audit, and the distilled advisory never downgrades.
//! 4. **Strictly advisory at every precision**: landing decisions and
//!    trials are bit-identical across audit-off, exact-audit and both
//!    approximate-audit pipelines.
//! 5. **Hard-fail fallback**: a divergence tolerance the cross-check
//!    cannot meet forces the sweep back onto the exact path and the
//!    resulting statistics are bit-identical to an exact run.
//! 6. **Typed refusal in the service**: an invalid precision is a typed
//!    `ServeError::InvalidConfig` at `try_new`/`set_session_precision`
//!    time, and a per-session override never changes decisions.
//!
//! As in `tests/properties.rs`, properties run as seeded-RNG loops
//! (no proptest in the build environment).

use std::sync::Arc as StdArc;

use certel::el_core::run_audit_with_clock;
use certel::el_seg::data::image_to_tensor;
use certel::prelude::*;
use el_kernels::approx::{f16_round, INT8_GROUP_COLS};
use el_kernels::gemm::gemm_bias_portable;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `true` when the *active* tier offers `rung`. The active tier honours
/// `EL_FORCE_KERNEL`, so CI's forced-sse2 matrix leg (a tier with no
/// approximate kernels, by design) skips the approximate-path tests
/// here instead of failing them. The dedicated forced-approximate CI
/// leg sets `EL_REQUIRE_APPROX`, which turns a would-be skip into a
/// failure — a green leg then proves the approximate contract actually
/// executed, rather than every test having quietly skipped itself.
fn rung_available(rung: ApproxRung) -> bool {
    let ok = KernelPolicy::approximate(rung).resolve().is_ok();
    if !ok && std::env::var_os("EL_REQUIRE_APPROX").is_some() {
        panic!(
            "EL_REQUIRE_APPROX is set but rung {} is unavailable on the active tier",
            rung.name()
        );
    }
    ok
}

fn tiny_net(seed: u64) -> MsdNet {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    MsdNet::new(&MsdNetConfig::tiny(), &mut r)
}

fn scene_image(seed: u64, w: usize, h: usize) -> certel::el_scene::Image {
    let mut p = SceneParams::small();
    p.width = w;
    p.height = h;
    Scene::generate(&p, seed).render(&Conditions::nominal(), seed)
}

fn random_f32s(rng: &mut ChaCha8Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect()
}

fn random_shape(rng: &mut ChaCha8Rng, case: usize) -> (usize, usize, usize) {
    let m = 1 + (rng.next_u32() % 12) as usize;
    let k = 1 + (rng.next_u32() % 96) as usize;
    // Column counts biased toward the int8 rung's group boundary and
    // the SIMD kernels' remainder paths.
    let n = match case % 4 {
        0 => 1 + (rng.next_u32() % 8) as usize,
        1 => INT8_GROUP_COLS - 1 + (rng.next_u32() % 3) as usize,
        2 => INT8_GROUP_COLS * (1 + (rng.next_u32() % 2) as usize),
        _ => 1 + (rng.next_u32() % 160) as usize,
    };
    (m, k, n)
}

/// `Contract::Exact` resolved on every supported tier is the exact
/// ladder: no approximate kernel is attached and the dispatched GEMM
/// reproduces the portable reference bit for bit.
#[test]
fn exact_contract_is_bit_identical_on_every_supported_tier() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE8AC_7001);
    for tier in KernelTier::supported() {
        let resolved = KernelPolicy::exact()
            .with_tier(tier)
            .resolve()
            .expect("exact contract resolves on every supported tier");
        assert!(resolved.contract().is_exact());
        assert!(!resolved.is_approximate());
        assert_eq!(resolved.tier(), tier);
        for case in 0..40 {
            let (m, k, n) = random_shape(&mut rng, case);
            let a = random_f32s(&mut rng, m * k);
            let b = random_f32s(&mut rng, k * n);
            let bias = random_f32s(&mut rng, m);
            let mut expect = vec![0.0f32; m * n];
            gemm_bias_portable(&a, &b, &bias, &mut expect, m, k, n);
            let mut out = vec![f32::NAN; m * n];
            resolved.gemm_bias(&a, &b, &bias, &mut out, m, k, n);
            let expect_bits: Vec<u32> = expect.iter().map(|x| x.to_bits()).collect();
            let out_bits: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                out_bits,
                expect_bits,
                "{} exact GEMM diverges on {m}x{k}x{n}",
                tier.name()
            );
        }
    }
}

/// Analytic error bound of the f16 rung for one output element:
/// rounding each operand to binary16 perturbs it by at most one half
/// ulp (relative `2^-11`), and the f32/FMA accumulation adds at most a
/// relative `2^-24` per partial sum.
fn f16_bound(a_row: &[f32], b_col: impl Iterator<Item = f32>, k: usize) -> f64 {
    let s: f64 = a_row
        .iter()
        .zip(b_col)
        .map(|(&x, y)| (x.abs() as f64) * (y.abs() as f64))
        .sum();
    // Two operand roundings (≤ 2^-11 relative each) plus accumulation.
    1.5 * s * (2f64.powi(-10) + k as f64 * 2f64.powi(-23)) + 1e-5
}

/// The approximate GEMM rungs stay within their analytic error bounds
/// over fuzzed shapes — on every tier that offers them.
#[test]
fn approximate_rungs_stay_within_analytic_error_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA990_0F16);
    for rung in [ApproxRung::F16, ApproxRung::Int8] {
        let resolved: Vec<_> = KernelTier::supported()
            .into_iter()
            .filter_map(|t| KernelPolicy::approximate(rung).with_tier(t).resolve().ok())
            .collect();
        assert!(
            !resolved.is_empty(),
            "the portable tier always offers rung {}",
            rung.name()
        );
        for case in 0..100 {
            let (m, k, n) = random_shape(&mut rng, case);
            let a = random_f32s(&mut rng, m * k);
            let b = random_f32s(&mut rng, k * n);
            let bias = random_f32s(&mut rng, m);
            // Exact reference in f64.
            let mut exact = vec![0.0f64; m * n];
            for r in 0..m {
                for j in 0..n {
                    let mut acc = bias[r] as f64;
                    for kk in 0..k {
                        acc += a[r * k + kk] as f64 * b[kk * n + j] as f64;
                    }
                    exact[r * n + j] = acc;
                }
            }
            // Reconstruct the documented quantisation scales for the
            // int8 bound: per-row for `a`, per-column-group for `b`.
            let sa: Vec<f64> = (0..m)
                .map(|r| {
                    let amax = a[r * k..(r + 1) * k]
                        .iter()
                        .fold(0.0f32, |acc, &x| acc.max(x.abs()));
                    if amax > 0.0 {
                        amax as f64 / 127.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let groups = n.div_ceil(INT8_GROUP_COLS).max(1);
            let sb: Vec<f64> = (0..groups)
                .map(|g| {
                    let j0 = g * INT8_GROUP_COLS;
                    let j1 = (j0 + INT8_GROUP_COLS).min(n);
                    let mut amax = 0.0f32;
                    for kk in 0..k {
                        for j in j0..j1 {
                            amax = amax.max(b[kk * n + j].abs());
                        }
                    }
                    if amax > 0.0 {
                        amax as f64 / 127.0
                    } else {
                        0.0
                    }
                })
                .collect();
            for kernels in &resolved {
                let mut out = vec![f32::NAN; m * n];
                kernels.gemm_bias(&a, &b, &bias, &mut out, m, k, n);
                for r in 0..m {
                    for j in 0..n {
                        let got = out[r * n + j] as f64;
                        let want = exact[r * n + j];
                        let bound = match rung {
                            ApproxRung::F16 => {
                                f16_bound(&a[r * k..(r + 1) * k], (0..k).map(|kk| b[kk * n + j]), k)
                            }
                            ApproxRung::Int8 => {
                                let sg = sb[j / INT8_GROUP_COLS];
                                let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
                                for kk in 0..k {
                                    sum_a += a[r * k + kk].abs() as f64;
                                    sum_b += b[kk * n + j].abs() as f64;
                                }
                                // Quantisation error ≤ half a step per
                                // operand element; i32 accumulation is
                                // exact, the epilogue rounds once.
                                1.5 * (0.5 * sg * sum_a
                                    + 0.5 * sa[r] * sum_b
                                    + 0.25 * k as f64 * sa[r] * sg)
                                    + 1e-5
                            }
                        };
                        assert!(
                            (got - want).abs() <= bound,
                            "{} rung {} out of bound on {m}x{k}x{n}: |{got} - {want}| > {bound}",
                            kernels.tier().name(),
                            rung.name()
                        );
                    }
                }
            }
        }
    }
    // Sanity-pin the f16 rounding helper the bound leans on.
    assert_eq!(f16_round(1.0), 1.0);
    assert_eq!(f16_round(0.1f32).to_bits(), 0.099975586f32.to_bits());
}

/// On every architecture at least one supported tier has no approximate
/// kernels (sse2/neon, by design): asking it for one must be the typed
/// [`KernelError::UnsupportedContract`] — never a silent downgrade to
/// exact, and never a silent downgrade to a lower tier that would hide
/// which kernels actually ran.
#[test]
fn unsupported_contract_is_a_typed_refusal() {
    let mut saw_refusal = false;
    for tier in KernelTier::supported() {
        for rung in [ApproxRung::F16, ApproxRung::Int8] {
            match KernelPolicy::approximate(rung).with_tier(tier).resolve() {
                Ok(resolved) => {
                    assert!(resolved.is_approximate());
                    assert_eq!(resolved.tier(), tier);
                }
                Err(KernelError::UnsupportedContract { tier: t, rung: r }) => {
                    assert_eq!((t, r), (tier, rung));
                    saw_refusal = true;
                }
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
    }
    assert!(
        saw_refusal,
        "every host has at least one supported tier without approximate rungs"
    );
    // The same refusal surfaces as a typed config error end to end:
    // on a host (or forced-tier CI leg) without the rung, validation
    // of an approximate precision refuses rather than downgrades.
    if !rung_available(ApproxRung::F16) {
        let p = AuditPrecision::approximate(ApproxRung::F16);
        assert!(p.validate().is_err(), "validate must refuse, not downgrade");
    }
}

fn calibration_crops(image: &certel::el_scene::Image) -> Vec<certel::el_nn::Tensor> {
    let mut crops = Vec::new();
    for (x, y) in [(0, 0), (16, 8), (24, 16)] {
        let rect = Rect::new(x, y, 32, 32).intersect(image.bounds());
        crops.push(image_to_tensor(&image.crop(rect).expect("crop in bounds")));
    }
    crops
}

/// With a margin calibrated on crops of the frame itself, every tile
/// the exact audit flags is flagged by the approximate audit too, and
/// the distilled advisory never downgrades: the approximate contract
/// can only escalate.
#[test]
fn approximate_audit_never_downgrades_exact_warnings() {
    let net = tiny_net(11);
    let image = scene_image(71, 56, 48);
    let rule = MonitorRule::paper();
    let config = AuditConfig::fast_test();
    for rung in [ApproxRung::F16, ApproxRung::Int8] {
        if !rung_available(rung) {
            eprintln!(
                "skipping rung {}: unavailable on the active tier",
                rung.name()
            );
            continue;
        }
        let precision = AuditPrecision::calibrated(
            &net,
            &calibration_crops(&image),
            config.samples,
            0xCA11,
            rung,
            rule.sigma_factor,
        )
        .expect("host offers both rungs");
        precision
            .validate()
            .expect("calibrated precision validates");
        let exact = run_audit_with_clock(&net, &image, &config, &rule, 42, &[], || 0.0);
        let approx = run_audit_with_clock(
            &net,
            &image,
            &config.with_precision(precision),
            &rule,
            42,
            &[],
            || 0.0,
        );
        assert!(exact.is_complete() && approx.is_complete());
        assert_eq!(approx.precision.contract, Contract::Approximate(rung));
        assert!(
            !approx.precision.fell_back,
            "calibrated tolerance must hold on the calibration frame"
        );
        assert_eq!(exact.tile_stats.len(), approx.tile_stats.len());
        for (e, a) in exact.tile_stats.iter().zip(&approx.tile_stats) {
            assert_eq!(e.rect, a.rect);
            assert!(
                a.warning_fraction >= e.warning_fraction,
                "rung {}: tile {:?} downgraded ({} < {})",
                rung.name(),
                e.rect,
                a.warning_fraction,
                e.warning_fraction
            );
        }
        assert!(approx.warning_fraction >= exact.warning_fraction);
        let exact_grade = AuditAdvisory::classify(exact.coverage(), exact.warning_fraction);
        let approx_grade = AuditAdvisory::classify_with_margin(
            approx.coverage(),
            approx.warning_fraction,
            approx.precision.sigma_margin as f64,
        );
        assert!(approx_grade >= exact_grade, "advisory downgraded");
    }
}

/// The audit is strictly advisory at every precision: decisions, trials
/// and predictions are bit-identical across audit-off, exact-audit and
/// both approximate-audit pipelines.
#[test]
fn decisions_are_bit_identical_across_audit_precisions() {
    let mut r = ChaCha8Rng::seed_from_u64(0xDEC1_5109);
    let precisions: Vec<(&str, Option<AuditPrecision>)> = vec![
        ("exact", Some(AuditPrecision::exact())),
        ("f16", Some(AuditPrecision::approximate(ApproxRung::F16))),
        ("int8", Some(AuditPrecision::approximate(ApproxRung::Int8))),
    ];
    for case in 0..3u64 {
        let image = scene_image(80 + case, 52, 44);
        let seed = r.gen::<u64>();
        let mut plain =
            ElPipeline::try_new(tiny_net(case), PipelineConfig::fast_test()).expect("valid config");
        let baseline = plain.run(&image, seed);
        assert!(baseline.audit.is_none());
        for (name, precision) in &precisions {
            if let Some(rung) = precision.unwrap().contract.rung() {
                if !rung_available(rung) {
                    continue;
                }
            }
            let audit = AuditConfig::fast_test().with_precision(precision.unwrap());
            let mut audited = ElPipeline::try_new(
                tiny_net(case),
                PipelineConfig::fast_test().with_audit(audit),
            )
            .expect("valid config");
            let outcome = audited.run(&image, seed);
            assert_eq!(baseline.decision, outcome.decision, "case {case} {name}");
            assert_eq!(baseline.trials, outcome.trials, "case {case} {name}");
            assert_eq!(baseline.predicted, outcome.predicted, "case {case} {name}");
            let report = outcome.audit.expect("audit attached");
            assert_eq!(report.precision.contract, precision.unwrap().contract);
        }
    }
}

/// A divergence tolerance the cross-check can never meet trips the
/// hard-fail on the first cross-checked tile: the whole sweep falls
/// back to the exact path and its statistics are bit-identical to an
/// exact-precision run.
#[test]
fn forced_divergence_falls_back_to_the_exact_path() {
    if !rung_available(ApproxRung::Int8) {
        eprintln!("skipping: int8 rung unavailable on the active tier");
        return;
    }
    let net = tiny_net(5);
    let image = scene_image(90, 48, 40);
    let rule = MonitorRule::paper();
    let config = AuditConfig::fast_test();
    let exact = run_audit_with_clock(&net, &image, &config, &rule, 7, &[], || 0.0);
    // Bypasses `validate()` deliberately: a negative tolerance is the
    // one value even a losslessly-quantised tile cannot satisfy.
    let poisoned = AuditPrecision {
        divergence_tolerance: -1.0,
        crosscheck_fraction: 1.0,
        ..AuditPrecision::approximate(ApproxRung::Int8)
    };
    let report = run_audit_with_clock(
        &net,
        &image,
        &config.with_precision(poisoned),
        &rule,
        7,
        &[],
        || 0.0,
    );
    assert!(report.precision.fell_back, "fallback must trip");
    assert_eq!(report.precision.tiles_approx, 0);
    assert_eq!(report.precision.tiles_crosschecked, 1);
    assert_eq!(
        report.precision.tiles_fallback as usize,
        report.tiles_verified()
    );
    // Every tile ran the exact path — the sweep statistics match an
    // exact run bit for bit (the σ-margin still shifts the warning
    // rule, which may only add warnings).
    let bits = |t: &certel::el_nn::Tensor| -> Vec<u32> {
        t.as_slice().iter().map(|x| x.to_bits()).collect()
    };
    assert_eq!(
        bits(&report.tiled.stats.mean),
        bits(&exact.tiled.stats.mean)
    );
    assert_eq!(bits(&report.tiled.stats.std), bits(&exact.tiled.stats.std));
    for (e, a) in exact.tile_stats.iter().zip(&report.tile_stats) {
        assert_eq!(e.rect, a.rect);
        assert!(a.warning_fraction >= e.warning_fraction);
    }
}

/// Service-level precision policy: invalid precisions are typed
/// refusals at construction and override time, and a per-session
/// approximate override never changes that session's decisions.
#[test]
fn serve_precision_policy_is_typed_and_advisory() {
    if !rung_available(ApproxRung::F16) || !rung_available(ApproxRung::Int8) {
        eprintln!("skipping: approximate rungs unavailable on the active tier");
        return;
    }
    let net = StdArc::new(tiny_net(3));
    let audited = |precision: AuditPrecision| certel::el_serve::ServeConfig {
        pipeline: PipelineConfig::fast_test().with_audit(AuditConfig::fast_test()),
        precision,
        ..certel::el_serve::ServeConfig::fast_test()
    };
    // An out-of-range precision is rejected with a typed error.
    let bad = AuditPrecision {
        crosscheck_fraction: -0.5,
        ..AuditPrecision::approximate(ApproxRung::F16)
    };
    match ElService::try_new(net.clone(), audited(bad)) {
        Err(certel::el_serve::ServeError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // The service folds its precision into the per-frame audit config.
    let service = ElService::try_new(
        net.clone(),
        audited(AuditPrecision::approximate(ApproxRung::F16)),
    )
    .expect("valid approximate service");
    assert_eq!(
        service.config().pipeline.audit.precision.contract,
        Contract::Approximate(ApproxRung::F16)
    );

    // Run the same two streams through an all-exact service and one
    // where stream 1 overrides to the int8 rung: decisions per session
    // must be bit-identical (the audit never feeds back).
    let frames = 3usize;
    let run = |override_precision: Option<AuditPrecision>| -> Vec<String> {
        let mut service = ElService::try_new(net.clone(), audited(AuditPrecision::exact()))
            .expect("valid exact service");
        let ids: Vec<_> = (0..2).map(|s| service.open_session(1000 + s)).collect();
        assert!(matches!(
            service.set_session_precision(999, None),
            Err(certel::el_serve::ServeError::UnknownSession(999))
        ));
        assert!(matches!(
            service.set_session_precision(ids[1], Some(bad)),
            Err(certel::el_serve::ServeError::InvalidConfig(_))
        ));
        service
            .set_session_precision(ids[1], override_precision)
            .expect("valid override");
        assert_eq!(
            service.session(ids[1]).unwrap().precision(),
            override_precision
        );
        for f in 0..frames {
            for (s, &id) in ids.iter().enumerate() {
                let image = scene_image(200 + (s * frames + f) as u64, 40, 36);
                let accepted = service
                    .submit(
                        id,
                        certel::el_serve::FrameRequest {
                            image,
                            wind_mps: 0.0,
                        },
                    )
                    .expect("open session");
                assert!(accepted);
            }
            service.tick();
        }
        ids.iter()
            .map(|&id| service.session(id).unwrap().decision_fp())
            .collect()
    };
    let plain = run(None);
    let overridden = run(Some(AuditPrecision::approximate(ApproxRung::Int8)));
    assert_eq!(plain, overridden, "a precision override changed decisions");
}

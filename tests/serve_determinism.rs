//! Determinism contract of the multi-stream service (the ISSUE 8
//! tentpole):
//!
//! - coalescing many streams' crops into one verification batch is
//!   bit-identical to running every stream through its own solo
//!   [`ElPipeline`], frame by frame — decisions, trials, warning
//!   fractions and audit summaries all match;
//! - N streams × K frames produce byte-identical per-stream decision
//!   logs and fingerprints at 1, 2 and 8 worker threads;
//! - the deterministic admission model refuses the *same* frames at
//!   every thread count, and refusals never shift surviving frames'
//!   seeds;
//! - fingerprints survive a process boundary (same binary re-executed).

use std::sync::Arc as StdArc;
use std::sync::Mutex;

use certel::prelude::*;
use el_serve::{FrameOutcome, Session};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Serializes every test that mutates `RAYON_NUM_THREADS` (process-wide
/// state; the test binary runs tests on multiple threads).
static THREAD_ENV: Mutex<()> = Mutex::new(());

fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_ENV.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// A briefly trained small net, shared by every test in this binary (an
/// untrained net predicts no landable pixels — no candidates, no crops —
/// and the batching property would hold vacuously).
fn serve_net() -> StdArc<MsdNet> {
    static NET: std::sync::OnceLock<StdArc<MsdNet>> = std::sync::OnceLock::new();
    NET.get_or_init(|| {
        let mut config = DatasetConfig::small(3);
        config.n_train = 6;
        config.n_test = 1;
        config.n_ood = 1;
        let dataset = Dataset::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net_cfg = MsdNetConfig {
            branch_channels: 8,
            head_hidden: 16,
            dilations: vec![1, 2],
            ..MsdNetConfig::tiny()
        };
        let mut net = MsdNet::new(&net_cfg, &mut rng);
        let train = TrainConfig {
            steps: 600,
            tile: 32,
            lr: 3e-3,
            class_weighted: true,
            augment: false,
            seed: 7,
        };
        Trainer::new(train).train(&mut net, &dataset);
        StdArc::new(net)
    })
    .clone()
}

/// The audited configuration every test here serves under (the
/// benchmark-style warning tolerance keeps the Land path reachable).
fn serve_pipeline_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast_test().with_audit(AuditConfig::fast_test());
    config.monitor.max_warning_fraction = 0.25;
    config
}

const STREAMS: usize = 3;
const FRAMES: usize = 3;
const BASE_SEED: u64 = 901;

/// A bit-exact comparison key for an audit result (float *bits*, not
/// formatted decimals).
fn audit_key(coverage: f64, warning_fraction: f64, regions: usize, complete: bool) -> String {
    format!(
        "{:016x}:{:016x}:{regions}:{complete}",
        coverage.to_bits(),
        warning_fraction.to_bits()
    )
}

/// Runs the standard load through a service and returns each stream's
/// state as `(log_json, decision_fp, audit_fp)` — captured *before* the
/// sessions close, so the comparison covers the full per-frame log, not
/// just the digest.
fn run_service(
    net: StdArc<MsdNet>,
    admission: el_serve::AdmissionConfig,
) -> Vec<(String, String, String)> {
    let config = el_serve::ServeConfig {
        pipeline: serve_pipeline_config(),
        admission,
        drift: Some(DriftConfig::medi_delivery()),
        audit_clock: TickClock::Zero,
        max_inbox: FRAMES,
        riskmap: None,
        precision: el_serve::AuditPrecision::exact(),
    };
    let mut service = ElService::try_new(net, config).expect("valid serve config");
    let streams = generate_streams(&LoadConfig::smoke(STREAMS, FRAMES, BASE_SEED));
    let ids: Vec<_> = streams
        .iter()
        .map(|s| service.open_session(s.frame_chain))
        .collect();
    for round in 0..FRAMES {
        for (id, stream) in ids.iter().zip(&streams) {
            service
                .submit(*id, stream.frames[round].clone())
                .expect("open session");
        }
        service.tick();
    }
    service.drain();
    ids.iter()
        .map(|id| {
            let s: &Session = service.session(*id).expect("session still open");
            (
                serde_json::to_string(&s.log().to_vec()).expect("log serializes"),
                s.decision_fp(),
                s.audit_fp(),
            )
        })
        .collect()
}

#[test]
fn coalesced_batching_matches_solo_pipelines() {
    let net = serve_net();
    let config = serve_pipeline_config();
    let streams = generate_streams(&LoadConfig::smoke(STREAMS, FRAMES, BASE_SEED));

    // Solo reference: one private pipeline per stream, frames in order,
    // same position-keyed seeds, zero audit clock. No drift tracker on
    // the service side, so both sides propose under the configured
    // clearance.
    let mut solo: Vec<Vec<(String, String, String)>> = Vec::new();
    for stream in &streams {
        let mut pipeline =
            ElPipeline::try_new((*net).clone(), config.clone()).expect("valid pipeline config");
        let mut outcomes = Vec::new();
        for (f, request) in stream.frames.iter().enumerate() {
            let seed = el_uavsim::frame_seed(stream.frame_chain, f);
            let out = pipeline.run_with_audit_clock(&request.image, seed, || 0.0);
            let audit = out.audit.as_ref().expect("audit enabled");
            outcomes.push((
                serde_json::to_string(&out.decision).unwrap(),
                serde_json::to_string(&out.trials).unwrap(),
                audit_key(
                    audit.coverage(),
                    audit.warning_fraction,
                    audit.regions.len(),
                    audit.is_complete(),
                ),
            ));
        }
        solo.push(outcomes);
    }

    // Service: all streams interleaved, crops coalesced across streams
    // into one verification batch per tick.
    let serve_config = el_serve::ServeConfig {
        pipeline: config,
        admission: el_serve::AdmissionConfig::unlimited(),
        drift: None,
        audit_clock: TickClock::Zero,
        max_inbox: FRAMES,
        riskmap: None,
        precision: el_serve::AuditPrecision::exact(),
    };
    let mut service = ElService::try_new(net.clone(), serve_config).expect("valid serve config");
    let ids: Vec<_> = streams
        .iter()
        .map(|s| service.open_session(s.frame_chain))
        .collect();
    for round in 0..FRAMES {
        for (id, stream) in ids.iter().zip(&streams) {
            service
                .submit(*id, stream.frames[round].clone())
                .expect("open session");
        }
        let report = service.tick();
        assert_eq!(report.admitted, STREAMS, "unlimited admission");
        assert!(
            report.crops > 0,
            "coalesced batch must actually carry crops"
        );
    }

    for (stream_idx, id) in ids.iter().enumerate() {
        let session = service.session(*id).expect("session open");
        let log = session.log();
        assert_eq!(log.len(), FRAMES);
        let audits: Vec<_> = session.audit_history().collect();
        assert_eq!(audits.len(), FRAMES, "audit enabled on every frame");
        for (f, record) in log.iter().enumerate() {
            assert_eq!(record.frame, f);
            assert_eq!(
                record.seed,
                el_uavsim::frame_seed(streams[stream_idx].frame_chain, f)
            );
            let FrameOutcome::Decided { decision, trials } = &record.outcome else {
                panic!("stream {stream_idx} frame {f} was refused under unlimited admission");
            };
            let (ref solo_decision, ref solo_trials, ref solo_audit) = solo[stream_idx][f];
            assert_eq!(
                &serde_json::to_string(decision).unwrap(),
                solo_decision,
                "stream {stream_idx} frame {f}: decision diverges from solo pipeline"
            );
            assert_eq!(
                &serde_json::to_string(trials).unwrap(),
                solo_trials,
                "stream {stream_idx} frame {f}: trials diverge from solo pipeline"
            );
            let a = audits[f];
            assert_eq!(
                &audit_key(a.coverage, a.warning_fraction, a.regions, a.complete),
                solo_audit,
                "stream {stream_idx} frame {f}: audit diverges from solo pipeline"
            );
        }
    }
}

#[test]
fn service_is_bit_identical_across_thread_counts() {
    let net = serve_net();
    let one = with_thread_count(1, || {
        run_service(net.clone(), el_serve::AdmissionConfig::unlimited())
    });
    assert!(
        one.iter().any(|(log, _, _)| log.contains("Decided")),
        "load must process frames"
    );
    for threads in [2, 8] {
        let many = with_thread_count(threads, || {
            run_service(net.clone(), el_serve::AdmissionConfig::unlimited())
        });
        assert_eq!(
            one, many,
            "per-stream logs/fingerprints diverge at {threads} threads"
        );
    }
}

#[test]
fn deterministic_admission_refuses_identically_across_thread_counts() {
    // A fixed synthetic cost of 0.4 s against a 1 s tick budget admits
    // exactly 2 of 3 drained frames per tick; the per-tick rotation
    // spreads the refusals across streams deterministically.
    let net = serve_net();
    let admission = el_serve::AdmissionConfig::fixed(1.0, 0.4);
    let one = with_thread_count(1, || run_service(net.clone(), admission));
    let refusals = one
        .iter()
        .map(|(log, _, _)| log.matches("\"Refused\"").count())
        .sum::<usize>();
    assert!(refusals > 0, "the fixed model must actually refuse frames");
    assert!(
        one.iter().any(|(log, _, _)| log.contains("Decided")),
        "the fixed model must still admit frames"
    );
    for threads in [2, 8] {
        let many = with_thread_count(threads, || run_service(net.clone(), admission));
        assert_eq!(one, many, "admission pattern diverges at {threads} threads");
    }
}

/// Environment flag that switches this test binary into "print the
/// fingerprints and exit" mode for the child process spawned below.
const SERVE_CHILD_ENV: &str = "EL_SERVE_REPLAY_CHILD";

fn combined_fingerprint() -> String {
    let rows = run_service(serve_net(), el_serve::AdmissionConfig::unlimited());
    let mut fp = el_serve::Fingerprint::new();
    for (log, decision_fp, audit_fp) in rows {
        fp.bytes(log.as_bytes());
        fp.bytes(decision_fp.as_bytes());
        fp.bytes(audit_fp.as_bytes());
    }
    fp.hex()
}

#[test]
fn service_is_bit_identical_across_process_invocations() {
    if std::env::var(SERVE_CHILD_ENV).is_ok() {
        // Child mode: the parent scrapes this marker from our stdout.
        println!("SERVE_FP={}", combined_fingerprint());
        return;
    }
    let local = combined_fingerprint();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args([
            "service_is_bit_identical_across_process_invocations",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(SERVE_CHILD_ENV, "1")
        .output()
        .expect("spawn serve replay child");
    assert!(
        out.status.success(),
        "serve replay child failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may emit the line mid-stream, so scrape by marker.
    let fp = stdout
        .split("SERVE_FP=")
        .nth(1)
        .map(|rest| &rest[..16])
        .unwrap_or_else(|| panic!("no fingerprint from serve child:\n{stdout}"));
    assert_eq!(fp, local, "fingerprint diverges across process invocations");
}

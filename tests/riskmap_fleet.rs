//! Property tests of the fleet ground-risk map (the ISSUE 9 tentpole):
//!
//! - the shared map's fingerprint is bit-identical at 1, 2 and 8 worker
//!   threads, and across a process re-execution of the same binary;
//! - a risk map that accumulates but never screens
//!   ([`RiskSettings::advisory`]) leaves every stream's decision log,
//!   trials and seeds byte-identical to running with no map at all —
//!   the veto-before-verify bit-identity contract;
//! - with screening thresholds hot enough to fire, the screen itself is
//!   deterministic across thread counts (same vetoes, same logs, same
//!   map), so the feedback loop map → proposal → audit → map converges
//!   identically everywhere.

use std::sync::Arc as StdArc;
use std::sync::Mutex;

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Serializes every test that mutates `RAYON_NUM_THREADS` (process-wide
/// state; the test binary runs tests on multiple threads).
static THREAD_ENV: Mutex<()> = Mutex::new(());

fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_ENV.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// A briefly trained small net (an untrained net proposes no candidates
/// and audits find nothing — every property here would hold vacuously).
fn fleet_net() -> StdArc<MsdNet> {
    static NET: std::sync::OnceLock<StdArc<MsdNet>> = std::sync::OnceLock::new();
    NET.get_or_init(|| {
        let mut config = DatasetConfig::small(3);
        config.n_train = 6;
        config.n_test = 1;
        config.n_ood = 1;
        let dataset = Dataset::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net_cfg = MsdNetConfig {
            branch_channels: 8,
            head_hidden: 16,
            dilations: vec![1, 2],
            ..MsdNetConfig::tiny()
        };
        let mut net = MsdNet::new(&net_cfg, &mut rng);
        let train = TrainConfig {
            steps: 600,
            tile: 32,
            lr: 3e-3,
            class_weighted: true,
            augment: false,
            seed: 7,
        };
        Trainer::new(train).train(&mut net, &dataset);
        StdArc::new(net)
    })
    .clone()
}

const STREAMS: usize = 3;
const FRAMES: usize = 3;
const BASE_SEED: u64 = 901;

/// Everything a fleet run exposes for bit-exact comparison.
#[derive(Debug, Clone, PartialEq)]
struct FleetResult {
    /// `(log_json, decision_fp, audit_fp)` per stream, in stream order.
    rows: Vec<(String, String, String)>,
    /// The map snapshot (hot cells at the veto threshold), if a map ran.
    map: Option<RiskMapSnapshot>,
    vetoes: usize,
    deprioritized: usize,
}

/// Runs the standard fleet load (shared terrain, audits on) under the
/// given risk-map settings and captures per-stream state plus the map.
fn run_fleet(net: StdArc<MsdNet>, riskmap: Option<RiskSettings>) -> FleetResult {
    let mut pipeline = PipelineConfig::fast_test().with_audit(AuditConfig::fast_test());
    pipeline.monitor.max_warning_fraction = 0.25;
    let config = ServeConfig {
        pipeline,
        admission: AdmissionConfig::unlimited(),
        drift: Some(DriftConfig::medi_delivery()),
        audit_clock: TickClock::Zero,
        max_inbox: FRAMES,
        riskmap,
        precision: el_serve::AuditPrecision::exact(),
    };
    let mut service = ElService::try_new(net, config).expect("valid serve config");
    let mut load = LoadConfig::smoke(STREAMS, FRAMES, BASE_SEED);
    load.terrain = TerrainMode::SharedFleet;
    let streams = generate_streams(&load);
    let ids: Vec<_> = streams
        .iter()
        .map(|s| service.open_session(s.frame_chain))
        .collect();
    let mut vetoes = 0;
    let mut deprioritized = 0;
    for round in 0..FRAMES {
        for (id, stream) in ids.iter().zip(&streams) {
            service
                .submit(*id, stream.frames[round].clone())
                .expect("open session");
        }
        let report = service.tick();
        vetoes += report.vetoes;
        deprioritized += report.deprioritized;
    }
    let rows = ids
        .iter()
        .map(|id| {
            let s = service.session(*id).expect("session still open");
            (
                serde_json::to_string(&s.log().to_vec()).expect("log serializes"),
                s.decision_fp(),
                s.audit_fp(),
            )
        })
        .collect();
    FleetResult {
        rows,
        map: service.riskmap_snapshot(),
        vetoes,
        deprioritized,
    }
}

#[test]
fn map_fingerprint_is_bit_identical_across_thread_counts() {
    let net = fleet_net();
    let settings = RiskSettings::fast_test();
    let one = with_thread_count(1, || run_fleet(net.clone(), Some(settings.clone())));
    let map = one.map.as_ref().expect("map configured");
    assert!(
        map.ingested > 0,
        "the fleet load must actually feed the map (audits found no regions)"
    );
    assert_eq!(map.tick as usize, FRAMES, "one map tick per service tick");
    for threads in [2, 8] {
        let many = with_thread_count(threads, || run_fleet(net.clone(), Some(settings.clone())));
        assert_eq!(
            one, many,
            "fleet state (logs, map fingerprint) diverges at {threads} threads"
        );
    }
}

#[test]
fn advisory_map_changes_nothing() {
    // Veto-before-verify bit-identity: screening with infinite
    // thresholds is the identity, so a map that merely *accumulates*
    // must leave decisions, trials and seeds byte-identical to no map.
    let net = fleet_net();
    let advisory = with_thread_count(2, || run_fleet(net.clone(), Some(RiskSettings::advisory())));
    let bare = with_thread_count(2, || run_fleet(net.clone(), None));
    assert_eq!(advisory.vetoes, 0, "advisory policy must never veto");
    assert_eq!(advisory.deprioritized, 0, "advisory policy must not demote");
    assert_eq!(
        advisory.rows, bare.rows,
        "advisory risk map changed a stream's decision log"
    );
    let map = advisory.map.expect("advisory map present");
    assert!(
        map.ingested > 0,
        "the advisory map must still accumulate audit regions"
    );
    assert!(bare.map.is_none(), "map-off run must not carry a map");
}

#[test]
fn hot_screening_is_deterministic_across_thread_counts() {
    // Thresholds low enough that any accumulated heat under a candidate
    // fires the screen; the point is not *whether* it fires (terrain
    // dependent) but that the whole feedback loop — map state feeding
    // proposals feeding the map — lands on identical bits everywhere.
    let net = fleet_net();
    let mut settings = RiskSettings::fast_test();
    settings.policy = RiskConfig {
        deprioritize_heat: 1e-9,
        veto_heat: 1e-6,
    };
    let one = with_thread_count(1, || run_fleet(net.clone(), Some(settings.clone())));
    assert!(
        one.map.as_ref().expect("map configured").ingested > 0,
        "screening test needs a heated map"
    );
    for threads in [2, 8] {
        let many = with_thread_count(threads, || run_fleet(net.clone(), Some(settings.clone())));
        assert_eq!(
            (one.vetoes, one.deprioritized),
            (many.vetoes, many.deprioritized),
            "screen counts diverge at {threads} threads"
        );
        assert_eq!(
            one, many,
            "hot-screen fleet state diverges at {threads} threads"
        );
    }
}

/// Environment flag that switches this test binary into "print the
/// fingerprint and exit" mode for the child process spawned below.
const RISKMAP_CHILD_ENV: &str = "EL_RISKMAP_REPLAY_CHILD";

fn combined_fingerprint() -> String {
    let result = run_fleet(fleet_net(), Some(RiskSettings::fast_test()));
    let mut fp = el_metrics::Fingerprint::new();
    for (log, decision_fp, audit_fp) in &result.rows {
        fp.bytes(log.as_bytes());
        fp.bytes(decision_fp.as_bytes());
        fp.bytes(audit_fp.as_bytes());
    }
    let map = result.map.expect("map configured");
    fp.bytes(map.fingerprint.as_bytes());
    fp.hex()
}

#[test]
fn map_fingerprint_survives_process_reexecution() {
    if std::env::var(RISKMAP_CHILD_ENV).is_ok() {
        // Child mode: the parent scrapes this marker from our stdout.
        println!("RISKMAP_FP={}", combined_fingerprint());
        return;
    }
    let local = combined_fingerprint();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args([
            "map_fingerprint_survives_process_reexecution",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(RISKMAP_CHILD_ENV, "1")
        .output()
        .expect("spawn riskmap replay child");
    assert!(
        out.status.success(),
        "riskmap replay child failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may emit the line mid-stream, so scrape by marker.
    let fp = stdout
        .split("RISKMAP_FP=")
        .nth(1)
        .map(|rest| &rest[..16])
        .unwrap_or_else(|| panic!("no fingerprint from riskmap child:\n{stdout}"));
    assert_eq!(
        fp, local,
        "map fingerprint diverges across process invocations"
    );
}

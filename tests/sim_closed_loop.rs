//! Integration: the real Figure 2 pipeline mounted in the Figure 1
//! safety-switch simulator (closed loop), plus cross-policy campaign
//! comparisons.

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn quick_pipeline_el(conditions: Conditions) -> PipelineElSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    // Brief training so the adapter's decisions are meaningful.
    let mut cfg = DatasetConfig::small(5);
    cfg.n_train = 4;
    let dataset = Dataset::generate(&cfg);
    Trainer::new(TrainConfig {
        steps: 250,
        tile: 32,
        lr: 3e-3,
        class_weighted: true,
        augment: false,
        seed: 3,
    })
    .train(&mut net, &dataset);
    let mut pcfg = PipelineConfig::fast_test();
    pcfg.monitor.samples = 4;
    pcfg.monitor.max_warning_fraction = 0.35;
    PipelineElSystem::new(
        ElPipeline::try_new(net, pcfg).expect("valid config"),
        conditions,
    )
}

#[test]
fn pipeline_el_flies_closed_loop() {
    let mut cfg = MissionConfig::small_test();
    cfg.rates = FailureRates::none();
    cfg.rates.lost_navigation = 120.0;
    let mission = Mission::new(cfg);
    let mut el = quick_pipeline_el(Conditions::nominal());
    let outcome = mission.run(&mut el, 4);
    // Navigation was lost, so the mission must have engaged EL and ended
    // either in a confirmed landing or a termination after abort.
    assert!(outcome.maneuvers.contains(&Maneuver::EmergencyLanding));
    match outcome.terminal {
        TerminalState::LandedEl { .. } | TerminalState::Terminated { .. } => {}
        other => panic!("unexpected terminal state {other:?}"),
    }
}

#[test]
fn closed_loop_is_deterministic() {
    let mut cfg = MissionConfig::small_test();
    cfg.rates.lost_navigation = 60.0;
    let mission = Mission::new(cfg);
    let a = mission.run(&mut quick_pipeline_el(Conditions::nominal()), 8);
    let b = mission.run(&mut quick_pipeline_el(Conditions::nominal()), 8);
    assert_eq!(a, b);
}

#[test]
fn campaign_with_pipeline_el_counts_consistent() {
    let mut ccfg = CampaignConfig::small_test(8);
    ccfg.mission.rates = FailureRates::none();
    ccfg.mission.rates.lost_navigation = 90.0;
    let campaign = Campaign::try_new(ccfg).expect("valid config");
    let report = campaign.run(&mut quick_pipeline_el(Conditions::nominal()));
    assert_eq!(
        report.completed + report.returned_to_base + report.landed_el + report.terminated,
        report.missions
    );
    // Every mission that neither completed nor RTB'd must have engaged EL
    // (installed) before any termination.
    assert!(report.maneuver_engagements[Maneuver::EmergencyLanding as usize] > 0);
}

#[test]
fn perfect_el_dominates_no_el_on_catastrophics() {
    // Statistical safety ordering across 40 missions.
    let mut ccfg = CampaignConfig::small_test(40);
    ccfg.mission.rates = FailureRates::none();
    ccfg.mission.rates.lost_navigation = 90.0;
    ccfg.mission.wind = Wind {
        mean_speed_mps: 1.0,
        direction_rad: 0.3,
        gust_std_mps: 0.3,
    };
    let with_el = Campaign::try_new(ccfg.clone())
        .expect("valid config")
        .run(&mut PerfectEl { clearance_m: 10.0 });
    let mut no_cfg = ccfg;
    no_cfg.mission.el_installed = false;
    let without_el = Campaign::try_new(no_cfg)
        .expect("valid config")
        .run(&mut NoEl);
    assert!(with_el.catastrophic_fraction() <= without_el.catastrophic_fraction());
    assert!(with_el.landed_el > 0);
    assert_eq!(without_el.landed_el, 0);
}

#[test]
fn sensor_fault_injection_composes_with_adapter() {
    // Faulted imagery flows end to end: build a scene, wash out a strip,
    // and make sure the adapter still produces a decision (not a panic).
    use el_geom::Rect;
    use el_scene::{apply_fault, SensorFault};
    let scene = Scene::generate(&SceneParams::small(), 12);
    let mut image = scene.render(&Conditions::nominal(), 1);
    apply_fault(
        &mut image,
        Rect::new(10, 10, 60, 30),
        SensorFault::Fog { strength: 0.9 },
        4,
    );
    let mut el = quick_pipeline_el(Conditions::nominal());
    // Run the inner pipeline directly on the faulted frame.
    let outcome = el.pipeline_mut().run(&image, 77);
    match outcome.decision {
        FinalDecision::Land(_) | FinalDecision::Abort(_) => {}
    }
}

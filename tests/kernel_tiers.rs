//! Cross-tier bit-identity: the kernel-dispatch contract, fuzzed.
//!
//! For **every kernel tier the host CPU supports**, the four dispatched
//! hot paths — the GEMM micro-kernel, the coordinate-keyed mask rows,
//! the ChaCha8 block function and the Welford statistics fold — must
//! reproduce the portable reference **bit for bit** over hundreds of
//! random shapes, deliberately skewed toward the remainder paths
//! (k-tails, column tails, odd widths, single-column outputs, 1-pixel
//! slabs). CI pins each x86 tier with `EL_FORCE_KERNEL` in a matrix job
//! and executes the NEON tier under qemu, so these properties execute on
//! every rung of the ladder on every push — not just whichever tier the
//! runner detects.
//!
//! The override itself is contract too: an unknown or unsupported tier
//! must be **rejected with a clear error**, never silently downgraded.
//! And the contract must hold all the way up the stack: a forced tier
//! reproduces the whole monitor's `bayesian_segment` output bit for bit
//! (checked by spawning this test binary once per supported tier).

use el_kernels::chacha::REFILL_WORDS;
use el_kernels::{chacha, gemm, mask, resolve, welford, KernelError, KernelTier, Kernels};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Supported tiers beyond portable (the comparison baseline).
fn simd_tiers() -> Vec<&'static Kernels> {
    KernelTier::supported()
        .into_iter()
        .filter(|&t| t != KernelTier::Portable)
        .map(|t| Kernels::for_tier(t).expect("supported tier resolves"))
        .collect()
}

fn random_f32s(rng: &mut ChaCha8Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn gemm_every_tier_matches_portable_over_random_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE1_4E51);
    let tiers = simd_tiers();
    for case in 0..200 {
        let m = 1 + (rng.next_u32() % 13) as usize;
        // Reduction depths like the engine's im2col matrices (in * k * k),
        // including depth 1 and odd tails.
        let k_dim = 1 + (rng.next_u32() % 80) as usize;
        // Column counts biased toward the micro-kernels' remainder
        // handling: pure tails (n < widest tile), exact tile multiples,
        // multiples plus a tail, and the single-column edge case.
        let n = match case % 5 {
            0 => 1,
            1 => 1 + (rng.next_u32() % 31) as usize,
            2 => 32 * (1 + (rng.next_u32() % 4) as usize),
            3 => 32 * (1 + (rng.next_u32() % 4) as usize) + 1 + (rng.next_u32() % 31) as usize,
            _ => 1 + (rng.next_u32() % 200) as usize,
        };
        let a = random_f32s(&mut rng, m * k_dim);
        let b = random_f32s(&mut rng, k_dim * n);
        let bias = random_f32s(&mut rng, m);
        let mut expect = vec![0.0f32; m * n];
        gemm::gemm_bias_portable(&a, &b, &bias, &mut expect, m, k_dim, n);
        for kernels in &tiers {
            let mut out = vec![f32::NAN; m * n];
            kernels.gemm_bias(&a, &b, &bias, &mut out, m, k_dim, n);
            assert_eq!(
                bits(&out),
                bits(&expect),
                "{} GEMM diverges from portable on {m}x{k_dim}x{n} (case {case})",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn mask_rows_every_tier_matches_portable_over_random_rows() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3A5C);
    let tiers = simd_tiers();
    for case in 0..200 {
        // Odd widths and sub-vector-width rows exercise the scalar tail.
        let len = match case % 4 {
            0 => 1 + (rng.next_u32() % 4) as usize,
            1 => 16 * (1 + (rng.next_u32() % 8) as usize),
            _ => 1 + (rng.next_u32() % 300) as usize,
        };
        let gx0 = (rng.next_u32() % 10_000) as usize;
        let row_seed = rng.next_u32();
        let rate = match case % 3 {
            0 => 0.5,
            1 => 0.1 + rng.gen::<f32>() * 0.8,
            _ => 0.9,
        };
        let scale = 1.0 / (1.0 - rate);
        // Include negatives so dropped lanes must produce -0.0 exactly.
        let src = random_f32s(&mut rng, len);
        let mut expect = vec![0.0f32; len];
        mask::mask_scale_row_portable(row_seed, gx0, rate, scale, &src, &mut expect);
        for kernels in &tiers {
            let mut out = vec![f32::NAN; len];
            kernels.mask_scale_row(row_seed, gx0, rate, scale, &src, &mut out);
            assert_eq!(
                bits(&out),
                bits(&expect),
                "{} mask row diverges (len {len}, gx0 {gx0}, rate {rate})",
                kernels.tier().name()
            );
            let mut in_place = src.clone();
            kernels.mask_scale_row_in_place(row_seed, gx0, rate, scale, &mut in_place);
            assert_eq!(
                bits(&in_place),
                bits(&expect),
                "{} in-place mask row diverges (len {len})",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn chacha_every_tier_matches_portable_over_random_streams() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC8ACA);
    let tiers = simd_tiers();
    for case in 0..200 {
        let key: [u32; 8] = core::array::from_fn(|_| rng.next_u32());
        // Random counters plus the 32-bit and 64-bit carry boundaries.
        let counter = match case % 4 {
            0 => rng.next_u64(),
            1 => u64::MAX - (rng.next_u32() % 4) as u64,
            2 => (1u64 << 32) - 1 - (rng.next_u32() % 4) as u64,
            _ => (rng.next_u32() % 1000) as u64,
        };
        let mut expect = [0u32; REFILL_WORDS];
        chacha::chacha_blocks_portable(&key, counter, &mut expect);
        for kernels in &tiers {
            let mut out = [0u32; REFILL_WORDS];
            kernels.chacha_blocks(&key, counter, &mut out);
            assert_eq!(
                out,
                expect,
                "{} ChaCha8 keystream diverges at counter {counter}",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn welford_every_tier_matches_portable_over_random_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3E1F0);
    let tiers = simd_tiers();
    for case in 0..200 {
        let classes = 1 + (rng.next_u32() % 8) as usize;
        // Pixel counts biased toward the lane-width edges: the 1-pixel
        // slab, exact multiples of the widest (16-lane) kernel, multiples
        // plus a sub-width tail, and free odd widths.
        let pixels = match case % 4 {
            0 => 1,
            1 => 16 * (1 + (rng.next_u32() % 8) as usize),
            2 => 16 * (1 + (rng.next_u32() % 8) as usize) + 1 + (rng.next_u32() % 15) as usize,
            _ => 1 + (rng.next_u32() % 300) as usize,
        };
        let samples = 1 + (rng.next_u32() % 12) as usize;
        let len = classes * pixels;
        // NaN-free slabs; every third case mixes in denormal magnitudes
        // (confident softmax pixels underflow toward them in production).
        let slabs: Vec<Vec<f32>> = (0..samples)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        if case % 3 == 0 && rng.next_u32() % 4 == 0 {
                            f32::from_bits(1 + rng.next_u32() % 0x007F_FFFF) // denormal
                        } else {
                            rng.gen::<f32>()
                        }
                    })
                    .collect()
            })
            .collect();
        // Portable reference: the sequential per-sample fold, then a Chan
        // merge against a second partial built from a sample prefix.
        let (mut em, mut es) = (vec![0.0f32; len], vec![0.0f32; len]);
        for (k, xs) in slabs.iter().enumerate() {
            welford::welford_push_portable(&mut em, &mut es, xs, (k + 1) as f32);
        }
        let prefix = 1 + samples / 2;
        let (mut pm, mut ps) = (vec![0.0f32; len], vec![0.0f32; len]);
        for (k, xs) in slabs.iter().take(prefix).enumerate() {
            welford::welford_push_portable(&mut pm, &mut ps, xs, (k + 1) as f32);
        }
        let (na, nb) = (samples as f32, prefix as f32);
        let n = na + nb;
        let (mut emerged_m, mut emerged_s) = (em.clone(), es.clone());
        welford::welford_merge_portable(
            &mut emerged_m,
            &mut emerged_s,
            &pm,
            &ps,
            nb / n,
            na * nb / n,
        );
        for kernels in &tiers {
            let (mut gm, mut gs) = (vec![0.0f32; len], vec![0.0f32; len]);
            for (k, xs) in slabs.iter().enumerate() {
                kernels.welford_push(&mut gm, &mut gs, xs, (k + 1) as f32);
            }
            assert_eq!(
                bits(&gm),
                bits(&em),
                "{} welford push mean diverges on {classes}x{pixels}, {samples} samples (case {case})",
                kernels.tier().name()
            );
            assert_eq!(
                bits(&gs),
                bits(&es),
                "{} welford push m2 diverges on {classes}x{pixels} (case {case})",
                kernels.tier().name()
            );
            kernels.welford_merge(&mut gm, &mut gs, &pm, &ps, nb / n, na * nb / n);
            assert_eq!(
                bits(&gm),
                bits(&emerged_m),
                "{} welford merge mean diverges (case {case})",
                kernels.tier().name()
            );
            assert_eq!(
                bits(&gs),
                bits(&emerged_s),
                "{} welford merge m2 diverges (case {case})",
                kernels.tier().name()
            );
            // The fused pair fold must also reproduce the portable
            // single-push fold bit for bit (pairing is a performance
            // choice, never a rounding choice).
            let (mut qm, mut qs) = (vec![0.0f32; len], vec![0.0f32; len]);
            let mut k = 0usize;
            while k + 2 <= samples {
                kernels.welford_push2(&mut qm, &mut qs, &slabs[k], &slabs[k + 1], (k + 1) as f32);
                k += 2;
            }
            while k < samples {
                kernels.welford_push(&mut qm, &mut qs, &slabs[k], (k + 1) as f32);
                k += 1;
            }
            assert_eq!(
                bits(&qm),
                bits(&em),
                "{} fused-pair fold mean diverges (case {case})",
                kernels.tier().name()
            );
            assert_eq!(
                bits(&qs),
                bits(&es),
                "{} fused-pair fold m2 diverges (case {case})",
                kernels.tier().name()
            );
        }
    }
}

/// FNV-1a over the bit patterns of the monitor's statistics for a fixed
/// pair of Monte-Carlo verifications — the whole-engine fingerprint the
/// cross-tier test compares between forced-tier processes. Covers both
/// an odd-width crop and a 1-pixel-wide slab (the welford kernels' tail
/// paths), with enough samples for several Welford chunks and a chunk
/// merge.
fn bayes_fingerprint() -> u64 {
    use certel::el_monitor::bayesian_segment_tensor;
    use certel::el_nn::Tensor;
    use certel::prelude::{MsdNet, MsdNetConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut fold = |stats: &certel::el_monitor::BayesStats| {
        for &v in stats.mean.as_slice().iter().chain(stats.std.as_slice()) {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
    };
    let crop = Tensor::from_fn(3, 10, 13, |c, y, x| {
        ((c + y * 2 + x) as f32 * 0.29).sin() * 0.6
    });
    fold(&bayesian_segment_tensor(&net, &crop, 7, 21));
    let sliver = Tensor::from_fn(3, 9, 1, |c, y, _| ((c * 5 + y) as f32 * 0.41).cos() * 0.4);
    fold(&bayesian_segment_tensor(&net, &sliver, 13, 4));
    h
}

/// Environment flag that switches this test binary into "print the
/// fingerprint and exit" mode for the child processes spawned below.
const FINGERPRINT_CHILD_ENV: &str = "EL_BAYES_FINGERPRINT_CHILD";

#[test]
fn bayesian_segment_bit_identical_under_every_forced_tier() {
    if std::env::var(FINGERPRINT_CHILD_ENV).is_ok() {
        // Child mode: the parent forced a tier via EL_FORCE_KERNEL and
        // scrapes this line from our stdout.
        println!("BAYES_FP={:016x}", bayes_fingerprint());
        return;
    }
    // Monitor-level cross-tier identity: re-run this very test binary
    // once per supported tier with EL_FORCE_KERNEL pinned (the active
    // dispatch table is resolved once per process, so distinct tiers
    // need distinct processes) and demand the identical whole-engine
    // fingerprint — GEMM, masks, ChaCha and the Welford fold all forced
    // through the named rung.
    let local = bayes_fingerprint();
    let exe = std::env::current_exe().expect("test binary path");
    for tier in KernelTier::supported() {
        let out = std::process::Command::new(&exe)
            .args([
                "bayesian_segment_bit_identical_under_every_forced_tier",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(FINGERPRINT_CHILD_ENV, "1")
            .env(el_kernels::FORCE_ENV, tier.name())
            .output()
            .expect("spawn forced-tier child");
        assert!(
            out.status.success(),
            "forced {} child failed:\n{}{}",
            tier.name(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // libtest may emit the line mid-stream ("test … ... BAYES_FP=…"),
        // so scrape by marker rather than by line prefix.
        let fp = stdout
            .split("BAYES_FP=")
            .nth(1)
            .map(|rest| &rest[..16])
            .unwrap_or_else(|| panic!("no fingerprint from {} child:\n{stdout}", tier.name()));
        assert_eq!(
            fp,
            format!("{local:016x}"),
            "bayesian_segment diverges under EL_FORCE_KERNEL={}",
            tier.name()
        );
    }
}

#[test]
fn conv_forward_is_tier_invariant_through_the_engine() {
    // End-to-end: the dispatched GEMM inside Conv2d::forward_with must
    // still reproduce the naive reference loop (which never touches the
    // dispatch table) under whatever tier this process runs — including
    // a CI-forced EL_FORCE_KERNEL tier.
    use el_nn::layers::Conv2d;
    use el_nn::{Tensor, Workspace};
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut ws = Workspace::new();
    for (ci, co, k, d, h, w) in [
        (3usize, 8usize, 3usize, 2usize, 13usize, 17usize),
        (2, 5, 5, 1, 9, 31),
        (4, 6, 1, 1, 8, 33),
        (1, 3, 3, 4, 5, 5),
    ] {
        let conv = Conv2d::new(ci, co, k, d, &mut rng);
        let input = Tensor::from_fn(ci, h, w, |c, y, x| {
            ((c * 31 + y * 7 + x) as f32 * 0.13).sin()
        });
        let reference = conv.forward_reference(&input);
        let engine = conv.forward_with(&input, &mut ws);
        assert_eq!(
            reference, engine,
            "dispatched conv diverges from reference ({ci}->{co} k{k} d{d})"
        );
    }
}

#[test]
fn forced_tier_governs_the_whole_process() {
    // When CI pins a tier, the active dispatch table must be exactly
    // that tier; without the override it must be the detected maximum.
    let active = el_kernels::active().tier();
    match std::env::var(el_kernels::FORCE_ENV) {
        Ok(name) => assert_eq!(
            active,
            KernelTier::parse(&name).expect("CI must force a valid tier"),
            "EL_FORCE_KERNEL={name} must govern the dispatch table"
        ),
        Err(_) => assert_eq!(active, KernelTier::detect()),
    }
}

#[test]
fn unsupported_and_unknown_tiers_are_rejected_with_clear_errors() {
    // Unknown names: the parse error lists the valid spellings.
    let err = resolve(Some("sse42")).unwrap_err();
    assert!(matches!(err, KernelError::UnknownTier(_)));
    let msg = err.to_string();
    assert!(
        msg.contains("sse42") && msg.contains("portable") && msg.contains("neon"),
        "unknown-tier error must name the input and the valid tiers: {msg}"
    );

    // Unsupported tiers: rejected, never downgraded. Every arch has at
    // least one (neon on x86_64, the x86 ladder on aarch64).
    for tier in el_kernels::ALL_TIERS {
        if tier.is_supported() {
            assert_eq!(resolve(Some(tier.name())).unwrap().tier(), tier);
        } else {
            let err = resolve(Some(tier.name())).unwrap_err();
            assert_eq!(err, KernelError::Unsupported(tier));
            let msg = err.to_string();
            assert!(
                msg.contains(tier.name()) && msg.contains("not supported by this CPU"),
                "unsupported-tier error must be explicit: {msg}"
            );
        }
    }
}

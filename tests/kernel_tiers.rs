//! Cross-tier bit-identity: the kernel-dispatch contract, fuzzed.
//!
//! For **every kernel tier the host CPU supports**, the three dispatched
//! hot paths — the GEMM micro-kernel, the coordinate-keyed mask rows and
//! the ChaCha8 block function — must reproduce the portable reference
//! **bit for bit** over hundreds of random shapes, deliberately skewed
//! toward the remainder paths (k-tails, column tails, odd widths,
//! single-column outputs). CI pins each x86 tier with `EL_FORCE_KERNEL`
//! in a matrix job, so these properties execute on every rung of the
//! ladder on every push — not just whichever tier the runner detects.
//!
//! The override itself is contract too: an unknown or unsupported tier
//! must be **rejected with a clear error**, never silently downgraded.

use el_kernels::chacha::REFILL_WORDS;
use el_kernels::{chacha, gemm, mask, resolve, KernelError, KernelTier, Kernels};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Supported tiers beyond portable (the comparison baseline).
fn simd_tiers() -> Vec<&'static Kernels> {
    KernelTier::supported()
        .into_iter()
        .filter(|&t| t != KernelTier::Portable)
        .map(|t| Kernels::for_tier(t).expect("supported tier resolves"))
        .collect()
}

fn random_f32s(rng: &mut ChaCha8Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn gemm_every_tier_matches_portable_over_random_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE1_4E51);
    let tiers = simd_tiers();
    for case in 0..200 {
        let m = 1 + (rng.next_u32() % 13) as usize;
        // Reduction depths like the engine's im2col matrices (in * k * k),
        // including depth 1 and odd tails.
        let k_dim = 1 + (rng.next_u32() % 80) as usize;
        // Column counts biased toward the micro-kernels' remainder
        // handling: pure tails (n < widest tile), exact tile multiples,
        // multiples plus a tail, and the single-column edge case.
        let n = match case % 5 {
            0 => 1,
            1 => 1 + (rng.next_u32() % 31) as usize,
            2 => 32 * (1 + (rng.next_u32() % 4) as usize),
            3 => 32 * (1 + (rng.next_u32() % 4) as usize) + 1 + (rng.next_u32() % 31) as usize,
            _ => 1 + (rng.next_u32() % 200) as usize,
        };
        let a = random_f32s(&mut rng, m * k_dim);
        let b = random_f32s(&mut rng, k_dim * n);
        let bias = random_f32s(&mut rng, m);
        let mut expect = vec![0.0f32; m * n];
        gemm::gemm_bias_portable(&a, &b, &bias, &mut expect, m, k_dim, n);
        for kernels in &tiers {
            let mut out = vec![f32::NAN; m * n];
            kernels.gemm_bias(&a, &b, &bias, &mut out, m, k_dim, n);
            assert_eq!(
                bits(&out),
                bits(&expect),
                "{} GEMM diverges from portable on {m}x{k_dim}x{n} (case {case})",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn mask_rows_every_tier_matches_portable_over_random_rows() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3A5C);
    let tiers = simd_tiers();
    for case in 0..200 {
        // Odd widths and sub-vector-width rows exercise the scalar tail.
        let len = match case % 4 {
            0 => 1 + (rng.next_u32() % 4) as usize,
            1 => 16 * (1 + (rng.next_u32() % 8) as usize),
            _ => 1 + (rng.next_u32() % 300) as usize,
        };
        let gx0 = (rng.next_u32() % 10_000) as usize;
        let row_seed = rng.next_u32();
        let rate = match case % 3 {
            0 => 0.5,
            1 => 0.1 + rng.gen::<f32>() * 0.8,
            _ => 0.9,
        };
        let scale = 1.0 / (1.0 - rate);
        // Include negatives so dropped lanes must produce -0.0 exactly.
        let src = random_f32s(&mut rng, len);
        let mut expect = vec![0.0f32; len];
        mask::mask_scale_row_portable(row_seed, gx0, rate, scale, &src, &mut expect);
        for kernels in &tiers {
            let mut out = vec![f32::NAN; len];
            kernels.mask_scale_row(row_seed, gx0, rate, scale, &src, &mut out);
            assert_eq!(
                bits(&out),
                bits(&expect),
                "{} mask row diverges (len {len}, gx0 {gx0}, rate {rate})",
                kernels.tier().name()
            );
            let mut in_place = src.clone();
            kernels.mask_scale_row_in_place(row_seed, gx0, rate, scale, &mut in_place);
            assert_eq!(
                bits(&in_place),
                bits(&expect),
                "{} in-place mask row diverges (len {len})",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn chacha_every_tier_matches_portable_over_random_streams() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC8ACA);
    let tiers = simd_tiers();
    for case in 0..200 {
        let key: [u32; 8] = core::array::from_fn(|_| rng.next_u32());
        // Random counters plus the 32-bit and 64-bit carry boundaries.
        let counter = match case % 4 {
            0 => rng.next_u64(),
            1 => u64::MAX - (rng.next_u32() % 4) as u64,
            2 => (1u64 << 32) - 1 - (rng.next_u32() % 4) as u64,
            _ => (rng.next_u32() % 1000) as u64,
        };
        let mut expect = [0u32; REFILL_WORDS];
        chacha::chacha_blocks_portable(&key, counter, &mut expect);
        for kernels in &tiers {
            let mut out = [0u32; REFILL_WORDS];
            kernels.chacha_blocks(&key, counter, &mut out);
            assert_eq!(
                out,
                expect,
                "{} ChaCha8 keystream diverges at counter {counter}",
                kernels.tier().name()
            );
        }
    }
}

#[test]
fn conv_forward_is_tier_invariant_through_the_engine() {
    // End-to-end: the dispatched GEMM inside Conv2d::forward_with must
    // still reproduce the naive reference loop (which never touches the
    // dispatch table) under whatever tier this process runs — including
    // a CI-forced EL_FORCE_KERNEL tier.
    use el_nn::layers::Conv2d;
    use el_nn::{Tensor, Workspace};
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut ws = Workspace::new();
    for (ci, co, k, d, h, w) in [
        (3usize, 8usize, 3usize, 2usize, 13usize, 17usize),
        (2, 5, 5, 1, 9, 31),
        (4, 6, 1, 1, 8, 33),
        (1, 3, 3, 4, 5, 5),
    ] {
        let conv = Conv2d::new(ci, co, k, d, &mut rng);
        let input = Tensor::from_fn(ci, h, w, |c, y, x| {
            ((c * 31 + y * 7 + x) as f32 * 0.13).sin()
        });
        let reference = conv.forward_reference(&input);
        let engine = conv.forward_with(&input, &mut ws);
        assert_eq!(
            reference, engine,
            "dispatched conv diverges from reference ({ci}->{co} k{k} d{d})"
        );
    }
}

#[test]
fn forced_tier_governs_the_whole_process() {
    // When CI pins a tier, the active dispatch table must be exactly
    // that tier; without the override it must be the detected maximum.
    let active = el_kernels::active().tier();
    match std::env::var(el_kernels::FORCE_ENV) {
        Ok(name) => assert_eq!(
            active,
            KernelTier::parse(&name).expect("CI must force a valid tier"),
            "EL_FORCE_KERNEL={name} must govern the dispatch table"
        ),
        Err(_) => assert_eq!(active, KernelTier::detect()),
    }
}

#[test]
fn unsupported_and_unknown_tiers_are_rejected_with_clear_errors() {
    // Unknown names: the parse error lists the valid spellings.
    let err = resolve(Some("sse42")).unwrap_err();
    assert!(matches!(err, KernelError::UnknownTier(_)));
    let msg = err.to_string();
    assert!(
        msg.contains("sse42") && msg.contains("portable") && msg.contains("neon"),
        "unknown-tier error must name the input and the valid tiers: {msg}"
    );

    // Unsupported tiers: rejected, never downgraded. Every arch has at
    // least one (neon on x86_64, the x86 ladder on aarch64).
    for tier in el_kernels::ALL_TIERS {
        if tier.is_supported() {
            assert_eq!(resolve(Some(tier.name())).unwrap().tier(), tier);
        } else {
            let err = resolve(Some(tier.name())).unwrap_err();
            assert_eq!(err, KernelError::Unsupported(tier));
            let msg = err.to_string();
            assert!(
                msg.contains(tier.name()) && msg.contains("not supported by this CPU"),
                "unsupported-tier error must be explicit: {msg}"
            );
        }
    }
}

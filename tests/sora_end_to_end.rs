//! Integration: the SORA engine reproduces the paper's Section III
//! numbers end to end, and the proposed EL mitigation changes the
//! certification outcome the way the paper argues.

use certel::prelude::*;
use el_core::requirements::{robustness, IntegrityDesign};
use el_sora::casestudy::paper_numbers;
use el_sora::oso::oso_profile;

#[test]
fn medi_delivery_headline_numbers() {
    let n = paper_numbers();
    // §III-A: "a typical ballistic vertical speed of 48.5 m/s … yields a
    // kinetic energy of 8.23 KJ".
    assert!((n.ballistic_speed_mps - 48.5).abs() < 0.1);
    assert!((n.kinetic_energy_kj - 8.23).abs() < 0.03);
    // §III-D1: "the resulting intrinsic GRC is 6 … the resulting initial
    // ARC is ARC-c".
    assert_eq!(n.intrinsic_grc, 6);
    assert_eq!(n.initial_arc, Arc::C);
    // §III-D3: "the final SAIL allocated to MEDI DELIVERY is 5 (6 if no
    // M3 is proposed)".
    assert_eq!(n.sail_with_m3.map(|s| s.level()), Some(5));
    assert_eq!(n.sail_without_m3.map(|s| s.level()), Some(6));
}

#[test]
fn el_mitigation_lowers_certification_burden() {
    let op = medi_delivery();
    let baseline = op.assess_without_el();
    let with_el = op.assess_with_el(ElMitigation::paper_target());
    assert!(with_el.final_grc < baseline.final_grc);
    assert!(with_el.sail.unwrap() < baseline.sail.unwrap());
    // The practical win: strictly fewer high-robustness OSOs.
    let high_baseline = oso_profile(baseline.sail.unwrap())[3];
    let high_with_el = oso_profile(with_el.sail.unwrap())[3];
    assert!(high_with_el < high_baseline);
}

#[test]
fn requirements_bridge_to_sora_robustness() {
    // The el-core Table III/IV artefacts map onto the SORA robustness
    // scale used by the mitigation engine.
    let design = IntegrityDesign {
        zones_avoid_high_risk: true,
        effective_in_conditions: true,
        accounts_for_wind: true,
        accounts_for_failures: true,
        accounts_for_latency: true,
    };
    let evidence = AssuranceEvidence {
        declaration: true,
        public_dataset_tested: true,
        in_context_tested: true,
        runtime_monitoring: true,
        third_party_validation: false,
        multi_condition_validated: false,
    };
    let integrity = design.integrity_level().unwrap();
    let assurance = evidence.assurance_level().unwrap();
    assert_eq!(integrity, IntegrityLevel::High);
    assert_eq!(assurance, AssuranceLevel::Medium);
    // SORA: robustness is the minimum of the two.
    assert_eq!(robustness(integrity, assurance), IntegrityLevel::Medium);

    // Dropping the runtime monitor collapses assurance to Low — the
    // paper's core argument for monitoring ML components.
    let no_monitor = AssuranceEvidence {
        runtime_monitoring: false,
        ..evidence
    };
    assert_eq!(no_monitor.assurance_level(), Some(AssuranceLevel::Low));
    assert_eq!(
        robustness(integrity, no_monitor.assurance_level().unwrap()),
        IntegrityLevel::Low
    );
}

#[test]
fn el_claim_consistent_across_crates() {
    // el-core levels → el-sora robustness → GRC credit.
    let map = |l: IntegrityLevel| match l {
        IntegrityLevel::Low => Robustness::Low,
        IntegrityLevel::Medium => Robustness::Medium,
        IntegrityLevel::High => Robustness::High,
    };
    let claim = ElMitigation {
        integrity: map(IntegrityLevel::Medium),
        assurance: Robustness::Medium,
    };
    let a = medi_delivery().assess_with_el(claim);
    assert_eq!(a.final_grc, 4);
    assert_eq!(a.sail.map(|s| s.level()), Some(4));
}

#[test]
fn severity_scale_consistent_between_sora_and_sim() {
    // The Table I scale used by the simulator's outcome grading is the
    // same one the hazard registry uses.
    assert_eq!(Severity::Catastrophic.rating(), 5);
    let r1 = el_sora::hazard::ground_risk("R1").unwrap();
    assert_eq!(r1.severity, Severity::Catastrophic);
    assert!(r1.severity.is_fatal());
}

//! Observability neutrality: the metrics layer is strictly
//! observational. Decisions, trials, predicted maps, and scenario
//! fingerprints must be **bit-identical** with metrics recording enabled
//! vs disabled, and the lock-free histograms must not lose samples under
//! concurrent recording.

use std::sync::Mutex;

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The enable flag is process-global and the test binary runs its tests
/// on parallel threads; tests that toggle the flag serialize here so one
/// test's arm never observes another's flag state.
static FLAG: Mutex<()> = Mutex::new(());

fn fresh_pipeline() -> ElPipeline {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    ElPipeline::try_new(
        net,
        PipelineConfig::fast_test().with_audit(AuditConfig::fast_test()),
    )
    .expect("valid test config")
}

fn test_image(seed: u64) -> certel::el_scene::Image {
    Scene::generate(&SceneParams::small(), seed).render(&Conditions::nominal(), seed)
}

#[test]
fn pipeline_outcomes_bit_identical_with_metrics_on_and_off() {
    let _guard = FLAG.lock().unwrap();
    // Several (image, seed) points, each run once with recording off and
    // once with recording on, from identically-constructed pipelines.
    for case in 0..3u64 {
        let image = test_image(case + 1);
        let seed = 100 + case;

        el_metrics::set_enabled(false);
        let off = fresh_pipeline().run(&image, seed);

        el_metrics::set_enabled(true);
        let runs_before = el_metrics::registry().snapshot().pipeline.runs;
        let on = fresh_pipeline().run(&image, seed);
        let runs_after = el_metrics::registry().snapshot().pipeline.runs;
        el_metrics::set_enabled(false);

        assert_eq!(off.decision, on.decision, "decision diverged (case {case})");
        assert_eq!(off.trials, on.trials, "trials diverged (case {case})");
        assert_eq!(
            off.predicted, on.predicted,
            "predicted map diverged (case {case})"
        );
        let (off_audit, on_audit) = (off.audit.expect("enabled"), on.audit.expect("enabled"));
        assert_eq!(
            off_audit.warning_fraction, on_audit.warning_fraction,
            "audit diverged (case {case})"
        );
        assert_eq!(
            off_audit.tiled.tiles_verified,
            on_audit.tiled.tiles_verified
        );
        assert_eq!(off_audit.regions.len(), on_audit.regions.len());
        // The enabled run actually recorded.
        assert_eq!(runs_after, runs_before + 1, "pipeline run not recorded");
    }
}

#[test]
fn scenario_fingerprints_bit_identical_with_metrics_on_and_off() {
    let _guard = FLAG.lock().unwrap();
    let scenario = Scenario::from_json(
        r#"{
            "name": "metrics-neutrality",
            "missions": 6,
            "base_seed": 2024,
            "mission": { "profile": "SmallTest" },
            "faults": [
                { "hazard": "LostNavigation", "at_time_s": 30.0, "missions": [1, 3] }
            ]
        }"#,
    )
    .expect("valid scenario");

    el_metrics::set_enabled(false);
    let off = scenario.run().expect("scenario runs");

    el_metrics::set_enabled(true);
    let missions_before = el_metrics::registry().snapshot().campaign.missions;
    let on = scenario.run().expect("scenario runs");
    let missions_after = el_metrics::registry().snapshot().campaign.missions;
    el_metrics::set_enabled(false);

    assert_eq!(
        off.fingerprint(),
        on.fingerprint(),
        "scenario fingerprint must not depend on the metrics layer"
    );
    assert_eq!(off.report, on.report, "campaign report diverged");
    // Per-mission wall/hazard recording really happened on the on-arm.
    assert_eq!(missions_after, missions_before + 6, "missions not recorded");
}

#[test]
fn histogram_bucket_counts_equal_recorded_totals_under_concurrent_recording() {
    // `Histogram::record_ns` is unconditional (gating lives in
    // `Stopwatch::start`), so this property needs no flag manipulation:
    // hammer one histogram from many threads and require that no sample
    // is lost and the bucket counts sum exactly to the recorded total.
    let hist = std::sync::Arc::new(el_metrics::Histogram::new());
    let threads = 8usize;
    let per_thread = 25_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let hist = hist.clone();
            std::thread::spawn(move || {
                // Values spread over many buckets, deterministic per thread.
                let mut x = (t as u64 + 1) * 0x9E37_79B9;
                let mut sum = 0u64;
                for _ in 0..per_thread {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let ns = x >> (x % 50);
                    hist.record_ns(ns);
                    sum = sum.wrapping_add(ns);
                }
                sum
            })
        })
        .collect();
    let expected_sum: u64 = handles
        .into_iter()
        .fold(0u64, |acc, h| acc.wrapping_add(h.join().unwrap()));

    let snap = hist.snapshot();
    let total = threads as u64 * per_thread;
    assert_eq!(snap.count, total, "histogram lost samples");
    assert_eq!(hist.count(), total);
    let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, total, "bucket counts disagree with total");
    assert_eq!(snap.sum_ns, expected_sum, "sum_ns must be exact");
    assert!(snap.max_ns >= snap.min_ns);
}

/// Measures the recording overhead on the `Monitor::verify` hot path.
/// Run explicitly in release mode (debug timings would be meaningless):
///
/// ```text
/// cargo test --release --test metrics -- --ignored --nocapture
/// ```
///
/// Interleaves off/on arms and compares medians, so drift on a busy host
/// hits both arms equally. The acceptance bound is <2% median overhead.
#[test]
#[ignore = "release-mode perf measurement, run explicitly"]
fn metrics_overhead_under_two_percent_on_verify() {
    let _guard = FLAG.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    let image = test_image(9);
    let crop = image.crop(Rect::new(0, 0, 24, 24)).expect("crop fits");
    let monitor = Monitor::new(MonitorConfig {
        samples: 8,
        ..MonitorConfig::paper()
    });

    let iterations = 60usize;
    let time_arm = |enabled: bool| -> Vec<u64> {
        el_metrics::set_enabled(enabled);
        (0..iterations)
            .map(|i| {
                let started = std::time::Instant::now();
                let report = monitor.verify(&net, &crop, i as u64);
                std::hint::black_box(report.warning_fraction);
                started.elapsed().as_nanos() as u64
            })
            .collect()
    };
    // Warmup both paths, then interleave full arms twice and pool them.
    time_arm(false);
    time_arm(true);
    let mut off: Vec<u64> = time_arm(false);
    let mut on: Vec<u64> = time_arm(true);
    off.extend(time_arm(false));
    on.extend(time_arm(true));
    el_metrics::set_enabled(false);

    off.sort_unstable();
    on.sort_unstable();
    let (off_med, on_med) = (off[off.len() / 2], on[on.len() / 2]);
    let overhead = on_med as f64 / off_med as f64 - 1.0;
    println!(
        "Monitor::verify median: metrics off {off_med} ns, on {on_med} ns, \
         overhead {:+.2}%",
        100.0 * overhead
    );
    assert!(
        overhead < 0.02,
        "metrics recording overhead {:.2}% exceeds the 2% budget",
        100.0 * overhead
    );
}

#[test]
fn verify_reports_bit_identical_with_metrics_on_and_off() {
    let _guard = FLAG.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    let image = test_image(9);
    let crop = image.crop(Rect::new(0, 0, 24, 24)).expect("crop fits");
    let monitor = Monitor::new(MonitorConfig {
        samples: 4,
        ..MonitorConfig::paper()
    });

    el_metrics::set_enabled(false);
    let off = monitor.verify(&net, &crop, 77);
    el_metrics::set_enabled(true);
    let on = monitor.verify(&net, &crop, 77);
    el_metrics::set_enabled(false);

    assert_eq!(off.verdict, on.verdict);
    assert_eq!(off.warning_fraction, on.warning_fraction);
    assert_eq!(off.warning_map, on.warning_map);
    assert_eq!(off.stats.mean.as_slice(), on.stats.mean.as_slice());
    assert_eq!(off.stats.std.as_slice(), on.stats.std.as_slice());
}

//! Integration across the perception stack: scene → segmentation →
//! monitor → pipeline, at unit-test scale (small scenes, short training).

use certel::prelude::*;
use el_seg::train::evaluate_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shared small dataset + briefly trained model for the stack tests.
///
/// The network is sized between the unit-test `tiny` config and the
/// benchmark config: Monte-Carlo-dropout uncertainty only separates the
/// in/out-of-distribution regimes once the trained network has some
/// redundancy, which the 4-channel tiny config cannot develop.
fn trained_setup() -> (Dataset, MsdNet) {
    let mut config = DatasetConfig::small(3);
    config.n_train = 6;
    config.n_test = 3;
    config.n_ood = 3;
    let dataset = Dataset::generate(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net_cfg = MsdNetConfig {
        branch_channels: 8,
        head_hidden: 16,
        dilations: vec![1, 2],
        ..MsdNetConfig::tiny()
    };
    let mut net = MsdNet::new(&net_cfg, &mut rng);
    let train = TrainConfig {
        steps: 900,
        tile: 32,
        lr: 3e-3,
        class_weighted: true,
        augment: false,
        seed: 7,
    };
    Trainer::new(train).train(&mut net, &dataset);
    (dataset, net)
}

#[test]
fn training_beats_chance_and_ood_degrades() {
    let (dataset, mut net) = trained_setup();
    let test = evaluate_split(&mut net, &dataset, Split::Test);
    let ood = evaluate_split(&mut net, &dataset, Split::Ood);
    // Even a briefly-trained tiny net must beat the 1/8 chance level
    // comfortably in distribution…
    assert!(
        test.pixel_accuracy() > 0.5,
        "test accuracy too low: {}",
        test.pixel_accuracy()
    );
    // …and the sunset shift must hurt (the Figure 4b premise).
    assert!(
        ood.pixel_accuracy() < test.pixel_accuracy(),
        "OOD did not degrade: {} vs {}",
        ood.pixel_accuracy(),
        test.pixel_accuracy()
    );
}

#[test]
fn mc_dropout_uncertainty_rises_out_of_distribution() {
    let (dataset, mut net) = trained_setup();
    let mean_sigma = |net: &mut MsdNet, dataset: &Dataset, split: Split| {
        let mut acc = 0.0;
        let mut n = 0;
        for s in dataset.split(split) {
            acc += bayesian_segment(net, &s.image, 6, 11).mean_uncertainty();
            n += 1;
        }
        acc / n as f64
    };
    let sigma_test = mean_sigma(&mut net, &dataset, Split::Test);
    let sigma_ood = mean_sigma(&mut net, &dataset, Split::Ood);
    assert!(
        sigma_ood > sigma_test,
        "OOD sigma {sigma_ood} not above test sigma {sigma_test}"
    );
}

#[test]
fn monitor_covers_core_misses_on_ood() {
    let (dataset, mut net) = trained_setup();
    let rule = MonitorRule::paper();
    let mut quality = MonitorQuality::default();
    for s in dataset.split(Split::Ood) {
        let core = segment(&mut net, &s.image);
        let core_safe = core.labels.map(|c| !c.is_busy_road());
        let stats = bayesian_segment(&net, &s.image, 6, 21);
        quality.accumulate(&s.labels, &core_safe, &rule.warning_map(&stats));
    }
    // The paper's Figure 4b claim: the monitor flags "a large part" of
    // the road areas the core model missed.
    if let Some(coverage) = quality.miss_coverage() {
        assert!(
            coverage > 0.5,
            "monitor covers too few dangerous misses: {coverage}"
        );
    }
    // And the monitor must flag most true road pixels overall.
    assert!(quality.road_warning_recall().unwrap_or(0.0) > 0.5);
}

#[test]
fn pipeline_decisions_are_gt_safe_or_abort_in_distribution() {
    let (dataset, net) = trained_setup();
    let mut config = PipelineConfig::fast_test();
    config.monitor.samples = 6;
    config.monitor.max_warning_fraction = 0.3; // tiny net: generous zone tolerance
    let mut pipeline = ElPipeline::try_new(net, config).expect("valid config");
    let mut decisions = 0;
    for (i, s) in dataset.split(Split::Test).enumerate() {
        let outcome = pipeline.run(&s.image, 100 + i as u64);
        decisions += 1;
        if let FinalDecision::Land(zone) = &outcome.decision {
            let a = assess_zone(&s.labels, zone.rect);
            assert!(!a.fatal, "sample {i}: confirmed zone on a true busy road");
        }
    }
    assert!(decisions > 0);
}

#[test]
fn pipeline_trials_never_exceed_budget() {
    let (dataset, net) = trained_setup();
    let config = PipelineConfig::fast_test();
    let budget = config.decision.max_trials;
    let mut pipeline = ElPipeline::try_new(net, config).expect("valid config");
    for (i, s) in dataset.samples.iter().enumerate() {
        let outcome = pipeline.run(&s.image, i as u64);
        assert!(outcome.trials.len() <= budget);
    }
}

#[test]
fn model_roundtrip_preserves_pipeline_behaviour() {
    let (dataset, net) = trained_setup();
    let json = net.to_json();
    let restored = MsdNet::from_json(&json).expect("roundtrip");
    let sample = dataset.split(Split::Test).next().unwrap();
    let mut p1 = ElPipeline::try_new(net, PipelineConfig::fast_test()).expect("valid config");
    let mut p2 = ElPipeline::try_new(restored, PipelineConfig::fast_test()).expect("valid config");
    let a = p1.run(&sample.image, 9);
    let b = p2.run(&sample.image, 9);
    assert_eq!(a.decision, b.decision);
    assert_eq!(a.trials, b.trials);
}

#[test]
fn edge_density_baseline_is_semantically_blind() {
    // The classical baseline picks low-texture windows; nothing stops it
    // from proposing a smooth road. This documents *why* the learned
    // approach exists.
    let (dataset, _) = trained_setup();
    let sample = dataset.split(Split::Test).next().unwrap();
    let zones = el_core::pipeline::edge_density_zones(&sample.image, &ZoneParams::small());
    assert!(
        !zones.is_empty(),
        "baseline should find low-texture windows"
    );
    // Its candidates carry no semantic clearance information.
    for z in &zones {
        assert_eq!(z.clearance_px, 0.0);
    }
}

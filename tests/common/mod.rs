//! Helpers shared by the integration-test binaries (not itself a test
//! binary — cargo only compiles `tests/<name>/mod.rs` when included via
//! `mod <name>;`).

/// Mirrors the tiled Bayesian sweep's documented predictive-admission
/// policy for a fake clock that ticks +1.0 per admission poll: admission
/// bootstraps on the raw `elapsed < budget` check until a prefix group
/// has been processed between two polls, then stops when
/// `elapsed + (pending + 1) · avg >= budget`, with `avg` an EWMA
/// (alpha 0.5) of `poll_delta / tiles_processed` and prefix groups
/// capped at two tiles. The sweep's own clock polls are the single
/// source of time, so the expected admitted-tile count is an exact
/// function of the budget and the plan size.
///
/// Kept in lockstep with `el_monitor::tiledbayes` — a change to the
/// admission policy must change this simulator, which is the point: the
/// fake-clock tests then fail loudly instead of silently re-deriving
/// whatever the implementation does.
pub fn expected_admitted(budget_s: f64, tiles_total: usize) -> usize {
    let mut t = -1.0f64;
    let mut clock = move || {
        t += 1.0;
        t
    };
    let mut avg: Option<f64> = None;
    let mut last_poll: Option<(f64, usize)> = None;
    let (mut admitted, mut processed, mut pending) = (0usize, 0usize, 0usize);
    while admitted < tiles_total {
        let now = clock();
        if let Some((prev_t, prev_done)) = last_poll {
            let done = processed - prev_done;
            if done > 0 {
                let cost = ((now - prev_t) / done as f64).max(0.0);
                avg = Some(match avg {
                    None => cost,
                    Some(a) => a + 0.5 * (cost - a),
                });
            }
        }
        last_poll = Some((now, processed));
        let predicted = avg.map_or(0.0, |a| (pending + 1) as f64 * a);
        if now + predicted >= budget_s {
            break;
        }
        admitted += 1;
        pending += 1;
        if pending == 2 || admitted == tiles_total {
            processed += pending;
            pending = 0;
        }
    }
    admitted
}

//! Property-based tests (proptest) on cross-crate invariants.

use certel::prelude::*;
use el_geom::distance::distance_transform;
use el_geom::Grid;
use el_nn::Tensor;
use el_sora::grc::{intrinsic_grc, GroundScenario, UavSpec};
use el_sora::mitigation::MitigationSet;
use el_sora::sail::sail;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact Euclidean distance transform matches brute force on
    /// arbitrary masks.
    #[test]
    fn distance_transform_matches_brute_force(
        bits in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mask = Grid::from_vec(8, 8, bits).unwrap();
        let fast = distance_transform(&mask);
        let seeds: Vec<_> = mask.enumerate().filter(|(_, &b)| b).map(|(p, _)| p).collect();
        for (p, &v) in fast.enumerate() {
            let brute = seeds
                .iter()
                .map(|s| ((s.x - p.x).pow(2) as f64 + (s.y - p.y).pow(2) as f64).sqrt())
                .fold(f64::INFINITY, f64::min);
            if brute.is_infinite() {
                prop_assert!(v.is_infinite());
            } else {
                prop_assert!((v - brute).abs() < 1e-9, "at {p}: {v} vs {brute}");
            }
        }
    }

    /// Dilation is extensive and monotone in the radius.
    #[test]
    fn dilation_monotone(
        bits in proptest::collection::vec(any::<bool>(), 49),
        r1 in 0.5f64..2.0,
        r2 in 2.0f64..4.0,
    ) {
        let mask = Grid::from_vec(7, 7, bits).unwrap();
        let d1 = el_geom::morph::dilate(&mask, r1);
        let d2 = el_geom::morph::dilate(&mask, r2);
        for ((&m, &a), &b) in mask.iter().zip(d1.iter()).zip(d2.iter()) {
            prop_assert!(!m || a, "dilation must be extensive");
            prop_assert!(!a || b, "dilation must be monotone in radius");
        }
    }

    /// The monitor rule is monotone: tightening tau or raising the sigma
    /// factor can only add warnings.
    #[test]
    fn monitor_rule_monotone(
        means in proptest::collection::vec(0.0f32..0.5, 8),
        stds in proptest::collection::vec(0.0f32..0.2, 8),
        tau_low in 0.02f32..0.1,
        tau_high in 0.1f32..0.4,
        k_low in 0.0f32..2.0,
        k_high in 2.0f32..5.0,
    ) {
        let mean = Tensor::from_vec(8, 1, 1, means).unwrap();
        let std = Tensor::from_vec(8, 1, 1, stds).unwrap();
        let stats = BayesStats { mean, std, samples: 10 };
        let strict = MonitorRule { tau: tau_low, sigma_factor: k_high };
        let lenient = MonitorRule { tau: tau_high, sigma_factor: k_low };
        let ws = strict.warning_map(&stats)[(0, 0)];
        let wl = lenient.warning_map(&stats)[(0, 0)];
        prop_assert!(!wl || ws, "strict rule must warn wherever lenient does");
    }

    /// Proposed zones never overlap predicted high-risk pixels and always
    /// satisfy the clearance they claim.
    #[test]
    fn zones_respect_predicted_risk(seed in 0u64..500) {
        let scene = Scene::generate(&SceneParams::small(), seed);
        let params = el_core::ZoneParams::small();
        for z in el_core::propose_zones(&scene.labels, &params) {
            prop_assert!(z.clearance_px >= params.clearance_px);
            for p in z.rect.pixels() {
                prop_assert!(
                    !scene.labels[p].endangers_people(),
                    "zone pixel {p} on predicted high-risk class"
                );
            }
        }
    }

    /// Drift clearance is monotone in wind speed and integrity level.
    #[test]
    fn drift_clearance_monotone(
        w1 in 0.0f64..5.0,
        dw in 0.0f64..5.0,
    ) {
        let model = DriftModel::medi_delivery();
        let low1 = model.required_clearance_m(w1, IntegrityLevel::Low);
        let low2 = model.required_clearance_m(w1 + dw, IntegrityLevel::Low);
        let med1 = model.required_clearance_m(w1, IntegrityLevel::Medium);
        prop_assert!(low2 >= low1, "clearance must grow with wind");
        prop_assert!(med1 >= low1, "medium must dominate low");
    }

    /// SORA invariants over arbitrary operations: mitigation never raises
    /// the final GRC beyond the M3 penalty; SAIL is monotone in the final
    /// GRC for every ARC.
    #[test]
    fn sora_monotonicity(
        dim in 0.2f64..12.0,
        mtow in 0.2f64..120.0,
        height in 5.0f64..200.0,
    ) {
        let spec = UavSpec {
            max_dimension_m: dim,
            mtow_kg: mtow,
            operating_height_m: height,
        };
        for scenario in [
            GroundScenario::ControlledArea,
            GroundScenario::VlosSparselyPopulated,
            GroundScenario::BvlosSparselyPopulated,
            GroundScenario::VlosPopulated,
            GroundScenario::BvlosPopulated,
        ] {
            let Some(grc) = intrinsic_grc(scenario, &spec) else { continue };
            // Claiming more EL robustness never increases the final GRC.
            let mut prev = u8::MAX;
            for el in [Robustness::None, Robustness::Low, Robustness::Medium, Robustness::High] {
                let set = MitigationSet { el, m3: Robustness::Medium, ..MitigationSet::none() };
                let f = set.final_grc(grc);
                prop_assert!(f <= prev);
                prev = f;
            }
            // SAIL monotone in GRC at fixed ARC.
            for arc in [Arc::A, Arc::B, Arc::C, Arc::D] {
                let mut prev_sail = None;
                for g in 1..=7u8 {
                    let s = sail(g, arc).unwrap();
                    if let Some(p) = prev_sail {
                        prop_assert!(s >= p);
                    }
                    prev_sail = Some(s);
                }
            }
        }
    }

    /// Softmax output is a probability distribution for arbitrary logits.
    #[test]
    fn softmax_is_distribution(
        logits in proptest::collection::vec(-30.0f32..30.0, 16),
    ) {
        let t = Tensor::from_vec(4, 2, 2, logits).unwrap();
        let p = el_nn::loss::softmax(&t);
        for i in 0..4usize {
            let s: f32 = (0..4).map(|k| p.as_slice()[k * 4 + i]).sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The safety switch never downgrades out of an emergency (except the
    /// documented Hovering recovery) under arbitrary hazard sequences.
    #[test]
    fn safety_switch_never_downgrades(
        hazard_idx in proptest::collection::vec(0usize..6, 1..12),
    ) {
        use el_sora::hazard::HazardCategory;
        use el_uavsim::{FlightMode, SafetySwitch};
        let mut switch = SafetySwitch::new(true);
        let mut worst: Option<Maneuver> = None;
        for &i in &hazard_idx {
            let hazard = HazardCategory::ALL[i];
            let mode = switch.on_hazard(hazard);
            if let FlightMode::Emergency(m) = mode {
                if m != Maneuver::Hovering {
                    if let Some(w) = worst {
                        prop_assert!(m >= w, "maneuver downgraded from {w:?} to {m:?}");
                    }
                    worst = Some(m);
                }
            }
        }
    }

    /// Touchdown severity is Catastrophic iff the contact disk touches a
    /// busy-road pixel.
    #[test]
    fn touchdown_severity_consistent(seed in 0u64..200, x in 5.0f64..40.0, y in 5.0f64..40.0) {
        use el_uavsim::mission::touchdown_severity;
        let scene = Scene::generate(&SceneParams::small(), seed);
        let at = el_geom::Vec2::new(x, y);
        let sev = touchdown_severity(&scene, at, true);
        let mpp = scene.params.meters_per_pixel;
        let cx = (x / mpp).round() as i64;
        let cy = (y / mpp).round() as i64;
        let r = (1.5 / mpp).ceil() as i64;
        let mut touches_road = false;
        for dy in -r..=r {
            for dx in -r..=r {
                if (dx * dx + dy * dy) as f64 > (r * r) as f64 { continue; }
                if let Some(c) = scene.labels.get(el_geom::Point::new(cx + dx, cy + dy)) {
                    if c.is_busy_road() { touches_road = true; }
                }
            }
        }
        prop_assert_eq!(sev == Severity::Catastrophic, touches_road);
    }
}

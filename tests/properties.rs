//! Property-based tests on cross-crate invariants.
//!
//! The build environment has no `proptest`, so each property runs as a
//! seeded-RNG loop: `CASES` random instances drawn from a `ChaCha8Rng`
//! with a fixed seed — fully deterministic, shrinking traded for
//! reproducibility.

use certel::prelude::*;
use el_geom::distance::distance_transform;
use el_geom::Grid;
use el_nn::layers::Conv2d;
use el_nn::{Tensor, Workspace};
use el_sora::grc::{intrinsic_grc, GroundScenario, UavSpec};
use el_sora::mitigation::MitigationSet;
use el_sora::sail::sail;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 48;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5EED)
}

/// The exact Euclidean distance transform matches brute force on
/// arbitrary masks.
#[test]
fn distance_transform_matches_brute_force() {
    let mut r = rng();
    for _ in 0..CASES {
        let bits: Vec<bool> = (0..64).map(|_| r.gen::<bool>()).collect();
        let mask = Grid::from_vec(8, 8, bits).unwrap();
        let fast = distance_transform(&mask);
        let seeds: Vec<_> = mask
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(p, _)| p)
            .collect();
        for (p, &v) in fast.enumerate() {
            let brute = seeds
                .iter()
                .map(|s| ((s.x - p.x).pow(2) as f64 + (s.y - p.y).pow(2) as f64).sqrt())
                .fold(f64::INFINITY, f64::min);
            if brute.is_infinite() {
                assert!(v.is_infinite());
            } else {
                assert!((v - brute).abs() < 1e-9, "at {p}: {v} vs {brute}");
            }
        }
    }
}

/// Dilation is extensive and monotone in the radius.
#[test]
fn dilation_monotone() {
    let mut r = rng();
    for _ in 0..CASES {
        let bits: Vec<bool> = (0..49).map(|_| r.gen::<bool>()).collect();
        let r1 = r.gen_range(0.5f64..2.0);
        let r2 = r.gen_range(2.0f64..4.0);
        let mask = Grid::from_vec(7, 7, bits).unwrap();
        let d1 = el_geom::morph::dilate(&mask, r1);
        let d2 = el_geom::morph::dilate(&mask, r2);
        for ((&m, &a), &b) in mask.iter().zip(d1.iter()).zip(d2.iter()) {
            assert!(!m || a, "dilation must be extensive");
            assert!(!a || b, "dilation must be monotone in radius");
        }
    }
}

/// The optimized im2col/GEMM convolution reproduces the naive reference
/// loop exactly, over random shapes, kernels and dilations — including
/// receptive fields larger than the image.
#[test]
fn conv_optimized_matches_naive_reference() {
    let mut r = rng();
    let mut ws = Workspace::new();
    for case in 0..CASES {
        let in_c = r.gen_range(1usize..5);
        let out_c = r.gen_range(1usize..7);
        let kernel = [1usize, 3, 5][r.gen_range(0usize..3)];
        let dilation = r.gen_range(1usize..5);
        let h = r.gen_range(1usize..13);
        let w = r.gen_range(1usize..13);
        let conv = Conv2d::new(in_c, out_c, kernel, dilation, &mut r);
        let mut vals = ChaCha8Rng::seed_from_u64(case as u64);
        let input = Tensor::from_fn(in_c, h, w, |_, _, _| vals.gen_range(-2.0f32..2.0));
        let reference = conv.forward_reference(&input);
        let optimized = conv.forward_with(&input, &mut ws);
        assert_eq!(
            reference, optimized,
            "conv {in_c}->{out_c} k{kernel} d{dilation} on {h}x{w} diverged"
        );
        ws.recycle(optimized);
    }
}

/// The batched conv (one column-stacked im2col GEMM over N inputs of
/// mixed shapes) reproduces the per-input optimized path exactly — which
/// the previous property anchors to the naive reference.
#[test]
fn conv_batched_matches_per_input() {
    let mut r = rng();
    let mut ws = Workspace::new();
    for case in 0..CASES {
        let in_c = r.gen_range(1usize..4);
        let out_c = r.gen_range(1usize..6);
        let kernel = [1usize, 3, 5][r.gen_range(0usize..3)];
        let dilation = r.gen_range(1usize..4);
        let conv = Conv2d::new(in_c, out_c, kernel, dilation, &mut r);
        let n = r.gen_range(1usize..5);
        let mut vals = ChaCha8Rng::seed_from_u64(1000 + case as u64);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| {
                let h = vals.gen_range(1usize..11);
                let w = vals.gen_range(1usize..11);
                Tensor::from_fn(in_c, h, w, |_, _, _| vals.gen_range(-2.0f32..2.0))
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = conv.forward_batch_with(&refs, &mut ws);
        for (input, out) in inputs.iter().zip(batched) {
            let single = conv.forward_with(input, &mut ws);
            assert_eq!(
                single,
                out,
                "case {case}: batched conv {in_c}->{out_c} k{kernel} d{dilation} diverged on {:?}",
                input.shape()
            );
            ws.recycle(single);
            ws.recycle(out);
        }
    }
}

/// Parallel Monte-Carlo dropout produces results bit-identical to the
/// sequential path for the same seed, and repeated runs are
/// deterministic.
#[test]
fn mc_dropout_parallel_matches_sequential() {
    use el_monitor::{bayesian_segment_tensor, bayesian_segment_tensor_sequential};
    let mut r = rng();
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut r);
    let input = Tensor::from_fn(3, 12, 9, |c, y, x| {
        ((c * 5 + y * 2 + x) as f32 * 0.17).sin()
    });
    for samples in [1usize, 2, 7, 10, 19] {
        let seed = r.gen::<u64>();
        let par = bayesian_segment_tensor(&net, &input, samples, seed);
        let seq = bayesian_segment_tensor_sequential(&net, &input, samples, seed);
        assert_eq!(
            par.mean.as_slice(),
            seq.mean.as_slice(),
            "{samples}-sample mean diverges at seed {seed}"
        );
        assert_eq!(
            par.std.as_slice(),
            seq.std.as_slice(),
            "{samples}-sample std diverges at seed {seed}"
        );
        let again = bayesian_segment_tensor(&net, &input, samples, seed);
        assert_eq!(par.mean, again.mean, "parallel path must be deterministic");
        assert_eq!(par.std, again.std);
    }
}

/// The monitor rule is monotone: tightening tau or raising the sigma
/// factor can only add warnings.
#[test]
fn monitor_rule_monotone() {
    let mut r = rng();
    for _ in 0..CASES {
        let means: Vec<f32> = (0..8).map(|_| r.gen_range(0.0f32..0.5)).collect();
        let stds: Vec<f32> = (0..8).map(|_| r.gen_range(0.0f32..0.2)).collect();
        let tau_low = r.gen_range(0.02f32..0.1);
        let tau_high = r.gen_range(0.1f32..0.4);
        let k_low = r.gen_range(0.0f32..2.0);
        let k_high = r.gen_range(2.0f32..5.0);
        let mean = Tensor::from_vec(8, 1, 1, means).unwrap();
        let std = Tensor::from_vec(8, 1, 1, stds).unwrap();
        let stats = BayesStats {
            mean,
            std,
            samples: 10,
        };
        let strict = MonitorRule {
            tau: tau_low,
            sigma_factor: k_high,
        };
        let lenient = MonitorRule {
            tau: tau_high,
            sigma_factor: k_low,
        };
        let ws = strict.warning_map(&stats)[(0, 0)];
        let wl = lenient.warning_map(&stats)[(0, 0)];
        assert!(!wl || ws, "strict rule must warn wherever lenient does");
    }
}

/// Proposed zones never overlap predicted high-risk pixels and always
/// satisfy the clearance they claim.
#[test]
fn zones_respect_predicted_risk() {
    let mut r = rng();
    for _ in 0..CASES {
        let seed = r.gen_range(0u64..500);
        let scene = Scene::generate(&SceneParams::small(), seed);
        let params = el_core::ZoneParams::small();
        for z in el_core::propose_zones(&scene.labels, &params) {
            assert!(z.clearance_px >= params.clearance_px);
            for p in z.rect.pixels() {
                assert!(
                    !scene.labels[p].endangers_people(),
                    "zone pixel {p} on predicted high-risk class"
                );
            }
        }
    }
}

/// Drift clearance is monotone in wind speed and integrity level.
#[test]
fn drift_clearance_monotone() {
    let mut r = rng();
    for _ in 0..CASES {
        let w1 = r.gen_range(0.0f64..5.0);
        let dw = r.gen_range(0.0f64..5.0);
        let model = DriftModel::medi_delivery();
        let low1 = model.required_clearance_m(w1, IntegrityLevel::Low);
        let low2 = model.required_clearance_m(w1 + dw, IntegrityLevel::Low);
        let med1 = model.required_clearance_m(w1, IntegrityLevel::Medium);
        assert!(low2 >= low1, "clearance must grow with wind");
        assert!(med1 >= low1, "medium must dominate low");
    }
}

/// SORA invariants over arbitrary operations: mitigation never raises
/// the final GRC beyond the M3 penalty; SAIL is monotone in the final
/// GRC for every ARC.
#[test]
fn sora_monotonicity() {
    let mut r = rng();
    for _ in 0..CASES {
        let spec = UavSpec {
            max_dimension_m: r.gen_range(0.2f64..12.0),
            mtow_kg: r.gen_range(0.2f64..120.0),
            operating_height_m: r.gen_range(5.0f64..200.0),
        };
        for scenario in [
            GroundScenario::ControlledArea,
            GroundScenario::VlosSparselyPopulated,
            GroundScenario::BvlosSparselyPopulated,
            GroundScenario::VlosPopulated,
            GroundScenario::BvlosPopulated,
        ] {
            let Some(grc) = intrinsic_grc(scenario, &spec) else {
                continue;
            };
            // Claiming more EL robustness never increases the final GRC.
            let mut prev = u8::MAX;
            for el in [
                Robustness::None,
                Robustness::Low,
                Robustness::Medium,
                Robustness::High,
            ] {
                let set = MitigationSet {
                    el,
                    m3: Robustness::Medium,
                    ..MitigationSet::none()
                };
                let f = set.final_grc(grc);
                assert!(f <= prev);
                prev = f;
            }
            // SAIL monotone in GRC at fixed ARC.
            for arc in [Arc::A, Arc::B, Arc::C, Arc::D] {
                let mut prev_sail = None;
                for g in 1..=7u8 {
                    let s = sail(g, arc).unwrap();
                    if let Some(p) = prev_sail {
                        assert!(s >= p);
                    }
                    prev_sail = Some(s);
                }
            }
        }
    }
}

/// Softmax output is a probability distribution for arbitrary logits.
#[test]
fn softmax_is_distribution() {
    let mut r = rng();
    for _ in 0..CASES {
        let logits: Vec<f32> = (0..16).map(|_| r.gen_range(-30.0f32..30.0)).collect();
        let t = Tensor::from_vec(4, 2, 2, logits).unwrap();
        let p = el_nn::loss::softmax(&t);
        for i in 0..4usize {
            let s: f32 = (0..4).map(|k| p.as_slice()[k * 4 + i]).sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

/// The safety switch never downgrades out of an emergency (except the
/// documented Hovering recovery) under arbitrary hazard sequences.
#[test]
fn safety_switch_never_downgrades() {
    use el_sora::hazard::HazardCategory;
    use el_uavsim::{FlightMode, SafetySwitch};
    let mut r = rng();
    for _ in 0..CASES {
        let len = r.gen_range(1usize..12);
        let hazard_idx: Vec<usize> = (0..len).map(|_| r.gen_range(0usize..6)).collect();
        let mut switch = SafetySwitch::new(true);
        let mut worst: Option<Maneuver> = None;
        for &i in &hazard_idx {
            let hazard = HazardCategory::ALL[i];
            let mode = switch.on_hazard(hazard);
            if let FlightMode::Emergency(m) = mode {
                if m != Maneuver::Hovering {
                    if let Some(w) = worst {
                        assert!(m >= w, "maneuver downgraded from {w:?} to {m:?}");
                    }
                    worst = Some(m);
                }
            }
        }
    }
}

/// Touchdown severity is Catastrophic iff the contact disk touches a
/// busy-road pixel.
#[test]
fn touchdown_severity_consistent() {
    use el_uavsim::mission::touchdown_severity;
    let mut r = rng();
    for _ in 0..CASES {
        let seed = r.gen_range(0u64..200);
        let x = r.gen_range(5.0f64..40.0);
        let y = r.gen_range(5.0f64..40.0);
        let scene = Scene::generate(&SceneParams::small(), seed);
        let at = el_geom::Vec2::new(x, y);
        let sev = touchdown_severity(&scene, at, true);
        let mpp = scene.params.meters_per_pixel;
        let cx = (x / mpp).round() as i64;
        let cy = (y / mpp).round() as i64;
        let rad = (1.5 / mpp).ceil() as i64;
        let mut touches_road = false;
        for dy in -rad..=rad {
            for dx in -rad..=rad {
                if (dx * dx + dy * dy) as f64 > (rad * rad) as f64 {
                    continue;
                }
                if let Some(c) = scene.labels.get(el_geom::Point::new(cx + dx, cy + dy)) {
                    if c.is_busy_road() {
                        touches_road = true;
                    }
                }
            }
        }
        assert_eq!(sev == Severity::Catastrophic, touches_road);
    }
}

//! Replay-determinism and statistical-power guarantees of the scenario
//! subsystem (the ISSUE 6 contract):
//!
//! - same scenario + seed → bit-identical `CampaignReport` and event-log
//!   fingerprint, across thread counts and across process invocations;
//! - inserting one scheduled fault leaves every other mission's event log
//!   byte-identical (scheduled faults consume no stochastic RNG draws);
//! - an underpowered campaign comes back explicitly flagged instead of
//!   silently reporting a clean severity table (the PR 2 `stress()`
//!   failure mode);
//! - every committed scenario file loads, validates, and has a golden
//!   fingerprint entry.
//!
//! Fingerprints here are *self-relative* (this build against itself):
//! absolute golden values are pinned only in the x86_64 CI scenario step,
//! because qemu/aarch64 libm rounding may differ across hosts.

use std::sync::Mutex;

use certel::prelude::*;

/// Serializes every test that mutates `RAYON_NUM_THREADS` (process-wide
/// state; the test binary runs tests on multiple threads).
static THREAD_ENV: Mutex<()> = Mutex::new(());

fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_ENV.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// A fast deterministic scenario for replay tests (SmallTest profile so
/// debug-mode CI stays quick).
fn replay_scenario() -> Scenario {
    Scenario::from_json(
        r#"{
            "name": "replay-test",
            "missions": 12,
            "base_seed": 2024,
            "mission": { "profile": "SmallTest" },
            "faults": [
                { "hazard": "TemporaryServiceLoss", "at_time_s": 10.0, "duration_s": 4.0 }
            ]
        }"#,
    )
    .expect("replay scenario is valid")
}

#[test]
fn replay_is_bit_identical_across_thread_counts() {
    let scenario = replay_scenario();
    let one = with_thread_count(1, || scenario.run().unwrap());
    for threads in [2, 4, 7] {
        let many = with_thread_count(threads, || scenario.run().unwrap());
        assert_eq!(
            one.report, many.report,
            "CampaignReport diverges at {threads} threads"
        );
        assert_eq!(one, many, "ScenarioOutcome diverges at {threads} threads");
        assert_eq!(
            one.fingerprint(),
            many.fingerprint(),
            "fingerprint diverges at {threads} threads"
        );
    }
}

/// Environment flag that switches this test binary into "print the
/// fingerprint and exit" mode for the child process spawned below.
const REPLAY_CHILD_ENV: &str = "EL_SCENARIO_REPLAY_CHILD";

#[test]
fn replay_is_bit_identical_across_process_invocations() {
    if std::env::var(REPLAY_CHILD_ENV).is_ok() {
        // Child mode: the parent scrapes this marker from our stdout.
        println!(
            "SCENARIO_FP={}",
            replay_scenario().run().unwrap().fingerprint_hex()
        );
        return;
    }
    let local = replay_scenario().run().unwrap().fingerprint_hex();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args([
            "replay_is_bit_identical_across_process_invocations",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(REPLAY_CHILD_ENV, "1")
        .output()
        .expect("spawn replay child");
    assert!(
        out.status.success(),
        "replay child failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may emit the line mid-stream, so scrape by marker.
    let fp = stdout
        .split("SCENARIO_FP=")
        .nth(1)
        .map(|rest| &rest[..16])
        .unwrap_or_else(|| panic!("no fingerprint from replay child:\n{stdout}"));
    assert_eq!(fp, local, "fingerprint diverges across process invocations");
}

#[test]
fn scheduled_fault_insertion_leaves_other_missions_byte_identical() {
    let baseline = replay_scenario();
    let before = baseline.run().unwrap();
    let mut with_fault = baseline.clone();
    with_fault.faults.push(ScheduledFault {
        hazard: HazardCategory::LossOfControl,
        at_time_s: 20.0,
        duration_s: None,
        missions: Some(vec![5]),
    });
    let after = with_fault.run().unwrap();
    let mut changed = 0;
    for i in 0..baseline.missions {
        let (b, a) = (&before.logs[i], &after.logs[i]);
        if i == 5 {
            assert_ne!(b, a, "the targeted mission must observe its fault");
            changed += 1;
        } else {
            // Byte-identical, not just structurally equal: the scheduled
            // fault consumed no draws from any other mission's stream.
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(a).unwrap(),
                "mission {i} perturbed by a fault scheduled for mission 5"
            );
        }
    }
    assert_eq!(changed, 1);
}

#[test]
fn underpowered_campaign_is_flagged_not_silent() {
    // The PR 2 `stress()` failure mode: 5 missions x 120 s at stress
    // rates expects ~0.67 loss-of-control and ~0.33 fly-away events —
    // far below any reasonable floor. The old fixed-seed campaign drew
    // zero FT-prescribing events and reported a clean severity table;
    // the power section must now call that out explicitly.
    let scenario = Scenario::from_json(
        r#"{
            "name": "underpowered",
            "missions": 5,
            "base_seed": 7,
            "mission": { "profile": "SmallTest" },
            "power": { "min_events_per_hazard": 3.0, "confidence": 0.95 }
        }"#,
    )
    .unwrap();
    let report = scenario.run().unwrap().report;
    let power = report.power.expect("scenario runs always compute power");
    assert!(
        power.underpowered,
        "a 5-mission stress campaign must be flagged underpowered"
    );
    for hazard in [HazardCategory::LossOfControl, HazardCategory::FlyAway] {
        let h = power
            .hazards
            .iter()
            .find(|h| h.hazard == hazard)
            .unwrap_or_else(|| panic!("{hazard:?} active under stress rates"));
        assert!(
            h.underpowered,
            "{hazard:?} expects {} events (< floor {}) and must be flagged",
            h.expected_events, power.min_events_floor
        );
        assert!(h.expected_events < 3.0);
    }
    // The severity table is still reported — flagged, not suppressed.
    assert_eq!(report.severity_histogram.iter().sum::<usize>(), 5);
}

#[test]
fn committed_scenarios_load_validate_and_declare_goldens() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let goldens_text = std::fs::read_to_string(format!("{root}/goldens.json"))
        .expect("scenarios/goldens.json is committed");
    let goldens = serde_json::parse_value(&goldens_text).expect("goldens.json parses");
    let mut names = Vec::new();
    for entry in std::fs::read_dir(root).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.file_name().is_some_and(|n| n == "goldens.json")
            || path.extension().is_none_or(|e| e != "json")
        {
            continue;
        }
        let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            scenario.missions >= 100,
            "{}: committed campaigns must have real statistical power",
            scenario.name
        );
        match goldens.get(&scenario.name) {
            Some(serde::Value::Str(hex)) => assert_eq!(
                hex.len(),
                16,
                "{}: golden must be a 16-digit hex fingerprint",
                scenario.name
            ),
            other => panic!(
                "scenarios/goldens.json entry missing or malformed for `{}`: {other:?}",
                scenario.name
            ),
        }
        names.push(scenario.name);
    }
    names.sort();
    assert_eq!(
        names,
        ["degraded_el", "fault_storm", "nominal", "storm_wind"],
        "the four ISSUE 6 regime files must stay committed"
    );
}

#[test]
fn committed_fault_storm_schedule_is_consumed() {
    // Run a 10-mission slice of the committed fault-storm scenario and
    // check the scheduled faults actually land in the event logs with
    // scheduled=true (the declarative layer reaches the mission loop).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fault_storm.json");
    let mut scenario = Scenario::load(path).unwrap();
    scenario.missions = 10;
    for fault in &mut scenario.faults {
        if let Some(targets) = &mut fault.missions {
            targets.retain(|&m| m < 10);
        }
    }
    let outcome = scenario.run().unwrap();
    let mut missions_with_scheduled = 0;
    let mut total_scheduled = 0;
    for record in &outcome.logs {
        let mut in_mission = 0;
        for event in &record.log {
            if let MissionEvent::Fault {
                scheduled: true,
                at_time_s,
                ..
            } = event
            {
                // Only the declared injection times may appear.
                assert!(
                    [60.0, 300.0, 450.0].contains(at_time_s),
                    "mission {}: scheduled fault at undeclared time {at_time_s}",
                    record.index
                );
                in_mission += 1;
            }
        }
        missions_with_scheduled += usize::from(in_mission > 0);
        total_scheduled += in_mission;
    }
    // A mission that terminates before t=60 s never reaches its scheduled
    // faults, so not all 10 log one — but the schedule must visibly reach
    // the fleet, including missions composing several scheduled faults.
    assert!(
        missions_with_scheduled >= 5,
        "only {missions_with_scheduled}/10 missions saw a scheduled fault"
    );
    assert!(
        total_scheduled > missions_with_scheduled,
        "no mission composed multiple scheduled faults ({total_scheduled} total)"
    );
}

//! The MEDI DELIVERY case study (paper §III): apply the SORA v2.0 with
//! and without the proposed emergency-landing mitigation and show the
//! certification-burden difference.
//!
//! ```text
//! cargo run --example medi_delivery
//! ```

use el_sora::casestudy::{medi_delivery, paper_numbers};
use el_sora::report::assessment_summary;
use el_sora::{ElMitigation, Robustness};

fn main() {
    let op = medi_delivery();
    println!("== Operation: {} ==", op.name);
    println!(
        "  span {:.1} m, MTOW {:.0} kg, height {:.0} m",
        op.spec.max_dimension_m, op.spec.mtow_kg, op.spec.operating_height_m
    );
    let n = paper_numbers();
    println!(
        "  ballistic speed {:.1} m/s (paper: 48.5), kinetic energy {:.2} kJ (paper: 8.23)",
        n.ballistic_speed_mps, n.kinetic_energy_kj
    );
    println!();

    println!("-- Baseline: current SORA, classical mitigations only --");
    let baseline = op.assess_without_el();
    print!("{}", assessment_summary(&op.name, &baseline));
    println!();

    println!("-- Without even an ERP (M3): the +1 penalty --");
    let no_m3 = op.assess_without_m3();
    print!("{}", assessment_summary(&op.name, &no_m3));
    println!();

    println!("-- With the proposed EL (active-M1) mitigation --");
    for (label, el) in [
        (
            "EL at low robustness (declaration only)",
            ElMitigation {
                integrity: Robustness::Medium,
                assurance: Robustness::Low,
            },
        ),
        (
            "EL at the paper's target (medium integrity + monitored assurance)",
            ElMitigation::paper_target(),
        ),
        (
            "EL at high robustness (third-party validated, condition sweep)",
            ElMitigation {
                integrity: Robustness::High,
                assurance: Robustness::High,
            },
        ),
    ] {
        println!("  [{label}]");
        let a = op.assess_with_el(el);
        print!("{}", assessment_summary(&op.name, &a));
        let delta = baseline.oso_profile[3] as i64 - a.oso_profile[3] as i64;
        println!("  -> {delta} fewer high-robustness OSOs than the baseline\n");
    }
}

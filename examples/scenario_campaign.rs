//! Runs a declarative fault-injection scenario file end to end: load,
//! validate, replay deterministically, print the campaign report with its
//! statistical-power section, and (optionally) pin the run's fingerprint
//! against a golden value or benchmark single- vs multi-thread throughput.
//!
//! ```text
//! cargo run --release --example scenario_campaign -- --scenario scenarios/nominal.json --seed 42
//! ```
//!
//! Flags:
//!
//! - `--scenario <file.json>` (required) — the scenario to run.
//! - `--seed <u64>` — override the scenario's `base_seed`.
//! - `--out <path>` — write the full `ScenarioOutcome` (report + every
//!   mission's event log) as JSON.
//! - `--check-golden <hex>` — exit nonzero unless the run's fingerprint
//!   equals this 16-digit hex value (the CI replay gate).
//! - `--goldens <file.json>` — like `--check-golden`, but look the
//!   expected fingerprint up by scenario name in a `{name: hex}` map.
//! - `--bench-out <path>` — time the campaign single- and multi-threaded
//!   and append `{scenario, missions, threads, secs, missions_per_sec}`
//!   rows to a JSON array at `path` (the `BENCH_scenarios.json` format).
//! - `--bench-pipeline <path>` — run the EL pipeline stage bench (exact
//!   per-stage nanoseconds from the metrics registry, true medians over
//!   many iterations) and write the summary to `path` (the
//!   `BENCH_pipeline.json` format). Works without `--scenario`.
//! - `--check-pipeline <baseline.json>` — run the same stage bench and
//!   exit nonzero if any stage's fresh median exceeds the committed
//!   baseline median by more than 25% (the CI bench-trend gate).

use std::process::ExitCode;
use std::time::Instant;

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Args {
    scenario: String,
    seed: Option<u64>,
    out: Option<String>,
    check_golden: Option<String>,
    goldens: Option<String>,
    bench_out: Option<String>,
    bench_pipeline: Option<String>,
    check_pipeline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: String::new(),
        seed: None,
        out: None,
        check_golden: None,
        goldens: None,
        bench_out: None,
        bench_pipeline: None,
        check_pipeline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = Some(
                    v.parse()
                        .map_err(|e| format!("--seed `{v}` is not a u64: {e}"))?,
                );
            }
            "--out" => args.out = Some(value("--out")?),
            "--check-golden" => args.check_golden = Some(value("--check-golden")?),
            "--goldens" => args.goldens = Some(value("--goldens")?),
            "--bench-out" => args.bench_out = Some(value("--bench-out")?),
            "--bench-pipeline" => args.bench_pipeline = Some(value("--bench-pipeline")?),
            "--check-pipeline" => args.check_pipeline = Some(value("--check-pipeline")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let pipeline_only = args.bench_pipeline.is_some() || args.check_pipeline.is_some();
    if args.scenario.is_empty() && !pipeline_only {
        return Err("--scenario <file.json> is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.scenario.is_empty() {
        // Pipeline-bench-only invocation (the CI bench-trend job).
        return run_pipeline_bench(&args);
    }
    let mut scenario = Scenario::load(&args.scenario).map_err(|e| e.to_string())?;
    if let Some(seed) = args.seed {
        scenario.base_seed = seed;
    }

    println!(
        "scenario `{}`: {} missions, base seed {}",
        scenario.name, scenario.missions, scenario.base_seed
    );
    if !scenario.description.is_empty() {
        println!("  {}", scenario.description);
    }

    let started = Instant::now();
    let outcome = scenario.run().map_err(|e| e.to_string())?;
    let elapsed = started.elapsed().as_secs_f64();
    print_report(&outcome);
    println!(
        "\n{} missions in {:.2} s ({:.1} missions/s)",
        outcome.report.missions,
        elapsed,
        outcome.report.missions as f64 / elapsed.max(1e-9)
    );
    let fingerprint = outcome.fingerprint_hex();
    println!("fingerprint: {fingerprint}");

    if let Some(path) = &args.out {
        let json = serde_json::to_string(&outcome).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote full outcome (report + event logs) to {path}");
    }

    if let Some(path) = &args.bench_out {
        bench(&scenario, path)?;
    }

    if args.bench_pipeline.is_some() || args.check_pipeline.is_some() {
        let code = run_pipeline_bench(&args)?;
        if code != ExitCode::SUCCESS {
            return Ok(code);
        }
    }

    let expected = match (&args.check_golden, &args.goldens) {
        (Some(hex), _) => Some(hex.clone()),
        (None, Some(path)) => Some(lookup_golden(path, &scenario.name)?),
        (None, None) => None,
    };
    if let Some(expected) = expected {
        if fingerprint != expected {
            eprintln!(
                "GOLDEN MISMATCH for `{}`: got {fingerprint}, want {expected}\n\
                 (a deliberate behaviour change must update the golden; \
                 anything else is a determinism regression)",
                scenario.name
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("golden fingerprint OK ({expected})");
    }
    Ok(ExitCode::SUCCESS)
}

/// Looks a scenario's expected fingerprint up in a flat `{name: hex}`
/// JSON object.
fn lookup_golden(path: &str, name: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read goldens {path}: {e}"))?;
    let map =
        serde_json::parse_value(&text).map_err(|e| format!("malformed goldens {path}: {e}"))?;
    match map.get(name) {
        Some(serde::Value::Str(hex)) => Ok(hex.clone()),
        Some(other) => Err(format!(
            "goldens file {path}: entry for `{name}` is not a string: {other:?}"
        )),
        None => Err(format!(
            "goldens file {path} has no entry for scenario `{name}`"
        )),
    }
}

fn print_report(outcome: &ScenarioOutcome) {
    let r = &outcome.report;
    println!(
        "\noutcomes: {} completed, {} returned to base, {} EL landings, {} terminations",
        r.completed, r.returned_to_base, r.landed_el, r.terminated
    );
    let f = r.maneuver_fractions();
    println!(
        "maneuver engagement (H / RB / EL / FT): {:.2} / {:.2} / {:.2} / {:.2}",
        f[0], f[1], f[2], f[3]
    );
    println!(
        "severity histogram 1..5: {:?}  (fatal {:.2}%, catastrophic {:.2}%)",
        r.severity_histogram,
        100.0 * r.fatal_fraction(),
        100.0 * r.catastrophic_fraction()
    );
    let events: usize = outcome.logs.iter().map(|m| m.log.len()).sum();
    println!(
        "event logs: {} events across {} missions",
        events,
        outcome.logs.len()
    );

    let Some(power) = &r.power else { return };
    println!(
        "\nstatistical power (floor {} events/hazard, {:.0}% confidence):",
        power.min_events_floor,
        100.0 * power.confidence
    );
    for h in &power.hazards {
        println!(
            "  {:<24} expected {:>7.2}  observed {:>5}  {}",
            format!("{:?}", h.hazard),
            h.expected_events,
            h.observed_events,
            if h.underpowered { "UNDERPOWERED" } else { "ok" }
        );
    }
    let fatal = &power.fatal_rate;
    println!(
        "  fatal rate {:.4} — Wilson [{:.4}, {:.4}], exact [{:.4}, {:.4}] ({}/{})",
        fatal.rate,
        fatal.wilson_lower,
        fatal.wilson_upper,
        fatal.exact_lower,
        fatal.exact_upper,
        fatal.successes,
        fatal.trials
    );
    if power.underpowered {
        println!(
            "  => campaign UNDERPOWERED: at least one hazard class drew too few events \
             for its severity rates to mean anything"
        );
    } else {
        println!("  => campaign adequately powered for every active hazard class");
    }
}

/// One `BENCH_scenarios.json` row.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchRow {
    scenario: String,
    missions: usize,
    threads: usize,
    secs: f64,
    missions_per_sec: f64,
    fingerprint: String,
}

/// Times the scenario single- and multi-threaded and appends rows to the
/// JSON array at `path`. The thread count is pinned per run through
/// `RAYON_NUM_THREADS` (the vendored rayon reads it per call), and the
/// runs' fingerprints are asserted identical — a bench must never time
/// two campaigns that are not the same campaign.
fn bench(scenario: &Scenario, path: &str) -> Result<(), String> {
    // Always emit a multi-thread row, even on a 1-core host: rayon honors
    // RAYON_NUM_THREADS beyond the core count (OS time-slicing), so the
    // 1-vs-many fingerprint assertion below holds everywhere even when
    // the multi-thread throughput number is only meaningful on real cores.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let mut rows: Vec<BenchRow> = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| format!("existing bench file {path} is not a bench-row array: {e}"))?,
        Err(_) => Vec::new(),
    };
    let mut fingerprints = Vec::new();
    for n in [1usize, threads] {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        let started = Instant::now();
        let outcome = scenario.run().map_err(|e| e.to_string())?;
        let secs = started.elapsed().as_secs_f64();
        fingerprints.push(outcome.fingerprint_hex());
        println!(
            "bench: {} thread(s) -> {:.2} s ({:.1} missions/s)",
            n,
            secs,
            scenario.missions as f64 / secs.max(1e-9)
        );
        rows.push(BenchRow {
            scenario: scenario.name.clone(),
            missions: scenario.missions,
            threads: n,
            secs,
            missions_per_sec: scenario.missions as f64 / secs.max(1e-9),
            fingerprint: outcome.fingerprint_hex(),
        });
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    if fingerprints.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "thread-count determinism violation: fingerprints {fingerprints:?}"
        ));
    }
    let json = serde_json::to_string(&rows).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("appended bench rows to {path}");
    Ok(())
}

/// The `BENCH_pipeline.json` format: median per-stage nanoseconds for one
/// `ElPipeline::run`, measured from the metrics registry (exact `sum_ns`
/// deltas per iteration, not histogram-bucket approximations).
#[derive(serde::Serialize, serde::Deserialize)]
struct PipelineBench {
    iterations: usize,
    propose_ns: u64,
    verify_ns: u64,
    decide_ns: u64,
    audit_ns: u64,
    total_ns: u64,
    monitor_verify_ns: u64,
    samples_per_run: u64,
    trials_per_run: u64,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Benchmarks the Figure 2 pipeline stage by stage. The metrics registry
/// is reset before each iteration and each stage histogram records exactly
/// once per run, so the per-iteration `sum_ns` IS that run's stage time —
/// medians here are true medians of exact measurements.
fn bench_pipeline_stages(iterations: usize) -> Result<PipelineBench, String> {
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net = MsdNet::new(&MsdNetConfig::tiny(), &mut rng);
    let mut pipeline = ElPipeline::try_new(
        net,
        PipelineConfig::fast_test().with_audit(AuditConfig::fast_test()),
    )
    .map_err(|e| e.to_string())?;
    let image = Scene::generate(&SceneParams::small(), 7).render(&Conditions::nominal(), 7);

    el_metrics::set_enabled(true);
    let reg = el_metrics::registry();
    for _ in 0..3 {
        pipeline.run(&image, 42); // warmup
    }

    let (mut propose, mut verify, mut decide, mut audit, mut total, mut monitor) = (
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
    );
    let (mut samples_run, mut trials) = (0u64, 0u64);
    for i in 0..iterations {
        reg.reset();
        let started = Instant::now();
        let _ = pipeline.run(&image, 42 + i as u64);
        total.push(started.elapsed().as_nanos() as u64);
        propose.push(reg.stage_propose.sum_ns());
        verify.push(reg.stage_verify.sum_ns());
        decide.push(reg.stage_decide.sum_ns());
        audit.push(reg.stage_audit.sum_ns());
        monitor.push(reg.verify_batch_latency.sum_ns());
        samples_run += reg.samples_run.get();
        trials += reg.verify_trials.get();
    }
    el_metrics::set_enabled(false);
    reg.reset();
    std::env::remove_var("RAYON_NUM_THREADS");

    Ok(PipelineBench {
        iterations,
        propose_ns: median(&mut propose),
        verify_ns: median(&mut verify),
        decide_ns: median(&mut decide),
        audit_ns: median(&mut audit),
        total_ns: median(&mut total),
        monitor_verify_ns: median(&mut monitor),
        samples_per_run: samples_run / iterations as u64,
        trials_per_run: trials / iterations as u64,
    })
}

/// Runs the stage bench, prints it, optionally writes `--bench-pipeline`
/// and gates against a `--check-pipeline` baseline (>25% median
/// regression on any stage fails).
fn run_pipeline_bench(args: &Args) -> Result<ExitCode, String> {
    let fresh = bench_pipeline_stages(40)?;
    println!(
        "\npipeline stage bench ({} iterations, 1 thread):",
        fresh.iterations
    );
    for (name, ns) in [
        ("propose", fresh.propose_ns),
        ("verify", fresh.verify_ns),
        ("decide", fresh.decide_ns),
        ("audit", fresh.audit_ns),
        ("total", fresh.total_ns),
        ("monitor.verify", fresh.monitor_verify_ns),
    ] {
        println!("  {name:<16} median {:>12} ns", ns);
    }
    println!(
        "  {:<16} {} samples, {} trials per run",
        "workload", fresh.samples_per_run, fresh.trials_per_run
    );

    if let Some(path) = &args.bench_pipeline {
        let json = serde_json::to_string(&fresh).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote pipeline bench to {path}");
    }

    let Some(baseline_path) = &args.check_pipeline else {
        return Ok(ExitCode::SUCCESS);
    };
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let base: PipelineBench = serde_json::from_str(&text)
        .map_err(|e| format!("malformed baseline {baseline_path}: {e}"))?;
    let mut regressed = false;
    println!("\nbench-trend vs {baseline_path} (fail threshold: +25% on any median):");
    for (name, now, was) in [
        ("propose", fresh.propose_ns, base.propose_ns),
        ("verify", fresh.verify_ns, base.verify_ns),
        ("decide", fresh.decide_ns, base.decide_ns),
        ("audit", fresh.audit_ns, base.audit_ns),
        ("total", fresh.total_ns, base.total_ns),
    ] {
        let ratio = now as f64 / (was as f64).max(1.0);
        // 25% relative plus a 50 µs absolute slack so sub-microsecond
        // stages (decide is a few hundred ns) can't trip the gate on
        // scheduler noise alone.
        let bad = ratio > 1.25 && now > was + 50_000;
        regressed |= bad;
        println!(
            "  {name:<16} fresh {now:>12} ns  baseline {was:>12} ns  {:+6.1}%  {}",
            100.0 * (ratio - 1.0),
            if bad { "REGRESSION" } else { "ok" }
        );
    }
    if regressed {
        eprintln!(
            "PIPELINE BENCH REGRESSION: a stage median slowed by more than 25% \
             against the committed BENCH_pipeline.json \
             (an intentional slowdown must update the baseline)"
        );
        return Ok(ExitCode::FAILURE);
    }
    println!("bench-trend OK");
    Ok(ExitCode::SUCCESS)
}

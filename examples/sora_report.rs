//! Regenerates the paper's normative tables: severity scale (Table I),
//! ground risks (Table II), the proposed EL integrity and assurance
//! criteria (Tables III and IV), and the OSO burden at the relevant
//! SAILs.
//!
//! ```text
//! cargo run --example sora_report
//! ```

use el_sora::report;
use el_sora::Sail;

fn main() {
    println!("{}", report::severity_table());
    println!("{}", report::ground_risk_table());
    println!("{}", report::integrity_criteria_table());
    println!("{}", report::assurance_criteria_table());
    for sail in [Sail::IV, Sail::V, Sail::VI] {
        println!("{}", report::oso_table(sail));
    }
}

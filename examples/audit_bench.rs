//! Audit contract-class bench: what the approximate kernel rungs buy
//! the whole-frame audit sweep, measured end to end and recorded as a
//! JSON bench snapshot (`BENCH_audit.json` format) for the CI
//! bench-trend gate.
//!
//! ```text
//! cargo run --release --example audit_bench -- --out BENCH_audit.json
//! ```
//!
//! The run:
//!
//! 1. trains the small deterministic serve model (fixed seeds),
//! 2. calibrates an [`AuditPrecision`] per approximate rung on crops of
//!    the bench frame (the σ-inflation margin and divergence tolerance
//!    come from measured quantisation error, not guesses),
//! 3. times the *complete* audit sweep under the exact contract and
//!    under each calibrated approximate rung (best of `--reps`),
//! 4. reruns both under a wall-clock budget of half the exact sweep to
//!    measure coverage-per-budget, the number the contract class
//!    exists for.
//!
//! Flags:
//!
//! - `--seed <u64>` — frame/render seed (default 42).
//! - `--side <px>` — frame side length (default 192).
//! - `--reps <n>` — timing repetitions, best-of (default 5).
//! - `--out <path>` — write the bench record as JSON.
//! - `--check <path>` — compare against a committed bench record and
//!   exit nonzero when an approximate rung's speedup over exact drops
//!   below 75% of the baseline's, or when its coverage under the half
//!   budget falls more than 5 points below the exact sweep's (the
//!   coverage-per-budget promise).
//!
//! On a host (or forced `EL_FORCE_KERNEL` tier) without approximate
//! kernels the run records the exact numbers, skips the rung gates and
//! exits zero — absence of the rungs is a property of the tier, not a
//! regression.

use std::process::ExitCode;
use std::time::Instant;

use certel::el_core::run_audit_with_clock;
use certel::el_seg::data::image_to_tensor;
use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

struct Args {
    seed: u64,
    side: usize,
    reps: usize,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        side: 192,
        reps: 5,
        out: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--side" => args.side = value("--side")?.parse().map_err(|e| format!("{e}"))?,
            "--reps" => args.reps = value("--reps")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.reps == 0 || args.side < 64 {
        return Err("--reps must be positive and --side at least 64".into());
    }
    Ok(args)
}

/// One rung's measurements, `None` when the active tier lacks the rung.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RungBench {
    /// Complete-sweep wall time, milliseconds (best of reps).
    sweep_ms: f64,
    /// Speedup of the complete sweep over the exact contract.
    speedup: f64,
    /// Coverage reached under the half-exact wall-clock budget.
    coverage_at_half_budget: f64,
    /// Calibrated σ-inflation margin (recorded for trend visibility).
    sigma_margin: f32,
}

/// The committed `BENCH_audit.json` schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AuditBench {
    side: usize,
    samples: usize,
    tiles: usize,
    /// Exact complete-sweep wall time, milliseconds (best of reps).
    exact_ms: f64,
    /// Exact coverage under the half-budget rerun (by construction
    /// roughly 0.5, recorded so the approximate coverage has a
    /// same-run denominator).
    exact_coverage_at_half_budget: f64,
    f16: Option<RungBench>,
    int8: Option<RungBench>,
}

impl AuditBench {
    fn check_against(&self, baseline: &AuditBench) -> Result<(), String> {
        for (name, now, base) in [
            ("f16", self.f16, baseline.f16),
            ("int8", self.int8, baseline.int8),
        ] {
            let (Some(now), Some(base)) = (now, base) else {
                println!("rung {name}: not present on both runs, gate skipped");
                continue;
            };
            if now.speedup < base.speedup * 0.75 {
                return Err(format!(
                    "{name} sweep speedup regressed: {:.2}x vs baseline {:.2}x",
                    now.speedup, base.speedup
                ));
            }
            if now.coverage_at_half_budget + 0.05 < self.exact_coverage_at_half_budget {
                return Err(format!(
                    "{name} coverage-per-budget lost: {:.2} vs exact {:.2} at the same budget",
                    now.coverage_at_half_budget, self.exact_coverage_at_half_budget
                ));
            }
        }
        Ok(())
    }
}

fn train_net() -> MsdNet {
    let mut config = DatasetConfig::small(3);
    config.n_train = 6;
    config.n_test = 1;
    config.n_ood = 1;
    let dataset = Dataset::generate(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    // The paper-default geometry (three branches, 16 channels, 32
    // hidden units): the audit's reduced-precision suffix then runs the
    // same GEMM shapes as the real monitor, which is what the contract
    // class is priced on.
    let net_cfg = MsdNetConfig::default_uavid();
    let mut net = MsdNet::new(&net_cfg, &mut rng);
    let train = TrainConfig {
        steps: 600,
        tile: 32,
        lr: 3e-3,
        class_weighted: true,
        augment: false,
        seed: 7,
    };
    Trainer::new(train).train(&mut net, &dataset);
    net
}

fn audit_config() -> AuditConfig {
    AuditConfig {
        enabled: true,
        budget_s: 1e9,
        tile: 48,
        margin: 8,
        samples: 5,
        min_region_px: 16,
        precision: AuditPrecision::exact(),
    }
}

/// Best-of-reps wall time of a complete sweep under `precision`.
fn time_complete_sweep(
    net: &MsdNet,
    image: &certel::el_scene::Image,
    precision: AuditPrecision,
    seed: u64,
    reps: usize,
) -> (f64, certel::el_core::AuditReport) {
    let config = audit_config().with_precision(precision);
    let rule = MonitorRule::paper();
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_audit_with_clock(net, image, &config, &rule, seed, &[], || 0.0);
        best = best.min(t0.elapsed().as_secs_f64());
        assert!(report.is_complete(), "unlimited budget must complete");
        last = Some(report);
    }
    (best, last.expect("reps > 0"))
}

/// Coverage reached under a real wall-clock budget — best of three
/// runs. A budgeted run is a single wall-clock race, so a scheduler
/// stall mid-run costs tiles; the maximum over a few runs estimates
/// what the budget buys when the box is not stalled, which is the
/// number the gate should trend.
fn coverage_at_budget(
    net: &MsdNet,
    image: &certel::el_scene::Image,
    precision: AuditPrecision,
    seed: u64,
    budget_s: f64,
) -> f64 {
    let config = AuditConfig {
        budget_s,
        ..audit_config()
    }
    .with_precision(precision);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let report = run_audit_with_clock(
            net,
            image,
            &config,
            &MonitorRule::paper(),
            seed,
            &[],
            || start.elapsed().as_secs_f64(),
        );
        best = best.max(report.coverage());
    }
    best
}

fn calibration_crops(image: &certel::el_scene::Image) -> Vec<certel::el_nn::Tensor> {
    let b = image.bounds();
    [(0, 0), (b.w / 2 - 24, b.h / 2 - 24), (b.w - 48, b.h - 48)]
        .into_iter()
        .map(|(x, y)| {
            image_to_tensor(&image.crop(Rect::new(x, y, 48, 48)).expect("crop in bounds"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("audit_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "audit_bench: {0}x{0} frame, seed {1}, best of {2}",
        args.side, args.seed, args.reps
    );
    println!("training bench model (fixed seeds)...");
    let net = train_net();
    let mut params = SceneParams::default_urban();
    params.width = args.side;
    params.height = args.side;
    let image = Scene::generate(&params, args.seed).render(&Conditions::nominal(), args.seed);

    let (exact_s, exact_report) =
        time_complete_sweep(&net, &image, AuditPrecision::exact(), args.seed, args.reps);
    let half_budget = exact_s * 0.5;
    let exact_cov = coverage_at_budget(
        &net,
        &image,
        AuditPrecision::exact(),
        args.seed,
        half_budget,
    );
    println!(
        "exact:   complete sweep {:.1} ms over {} tiles; coverage {:.0}% at half budget",
        exact_s * 1e3,
        exact_report.tiles_total(),
        exact_cov * 100.0
    );

    let mut bench = AuditBench {
        side: args.side,
        samples: audit_config().samples,
        tiles: exact_report.tiles_total(),
        exact_ms: exact_s * 1e3,
        exact_coverage_at_half_budget: exact_cov,
        f16: None,
        int8: None,
    };

    let crops = calibration_crops(&image);
    for rung in [ApproxRung::F16, ApproxRung::Int8] {
        if KernelPolicy::approximate(rung).resolve().is_err() {
            println!(
                "{}: not available on the active kernel tier, skipped",
                rung.name()
            );
            continue;
        }
        let precision = AuditPrecision::calibrated(
            &net,
            &crops,
            audit_config().samples,
            args.seed,
            rung,
            MonitorRule::paper().sigma_factor,
        )
        .expect("rung resolves");
        let (sweep_s, report) = time_complete_sweep(&net, &image, precision, args.seed, args.reps);
        assert!(
            !report.precision.fell_back,
            "{}: calibrated tolerance must hold on the bench frame",
            rung.name()
        );
        let coverage = coverage_at_budget(&net, &image, precision, args.seed, half_budget);
        let entry = RungBench {
            sweep_ms: sweep_s * 1e3,
            speedup: exact_s / sweep_s,
            coverage_at_half_budget: coverage,
            sigma_margin: precision.sigma_margin,
        };
        println!(
            "{}: complete sweep {:.1} ms ({:.2}x exact); coverage {:.0}% at half budget; σ-margin {:.2e}",
            rung.name(),
            entry.sweep_ms,
            entry.speedup,
            coverage * 100.0,
            entry.sigma_margin
        );
        match rung {
            ApproxRung::F16 => bench.f16 = Some(entry),
            ApproxRung::Int8 => bench.int8 = Some(entry),
        }
    }

    if let Some(path) = &args.out {
        let json = serde_json::to_string(&bench).expect("bench record serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("audit_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench record written to {path}");
    }

    if let Some(path) = &args.check {
        let baseline: AuditBench = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("audit_bench: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = bench.check_against(&baseline) {
            eprintln!("audit_bench: bench gate failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench gate passed");
    }
    ExitCode::SUCCESS
}

//! The Figure 1 experiment: Monte-Carlo failure-injection campaigns over
//! the safety-switch architecture, comparing emergency-landing policies.
//!
//! ```text
//! cargo run --release --example failure_campaign
//! ```

use certel::prelude::*;

fn main() {
    let mut config = CampaignConfig::small_test(300);
    config.mission = MissionConfig::medi_delivery(1);
    config.mission.duration_s = 240.0;
    // Moderate wind; the EL clearance below is derived from the drift
    // model so confirmed zones absorb the canopy drift (Table III
    // Medium-1) — an 8 m clearance under a 22 m drift would land
    // "perfect" selections on roads.
    config.mission.wind = Wind {
        mean_speed_mps: 1.5,
        direction_rad: 0.7,
        gust_std_mps: 0.5,
    };
    config.mission.view_radius_m = 80.0; // trajectory control is retained: the UAV can reach any zone in this radius
    config.missions = 300;

    let drift = certel::el_core::DriftModel {
        deploy_altitude_m: config.mission.el_deploy_altitude_m,
        ..certel::el_core::DriftModel::medi_delivery()
    };
    let clearance_m = drift.required_clearance_m(
        config.mission.wind.mean_speed_mps,
        certel::el_core::IntegrityLevel::Low,
    );
    println!(
        "EL zone clearance from drift model: {:.1} m (deploy {:.0} m, wind {:.1} m/s)",
        clearance_m, drift.deploy_altitude_m, config.mission.wind.mean_speed_mps
    );

    println!(
        "running {} missions x 3 EL policies under stress failure rates...\n",
        config.missions
    );

    let campaign = Campaign::new(config.clone());
    let mut no_el_cfg = config.clone();
    no_el_cfg.mission.el_installed = false;
    let no_el_campaign = Campaign::new(no_el_cfg);

    let mut degraded = NoisyEl::degraded();
    degraded.inner.clearance_m = clearance_m;
    let reports = [
        (
            "no EL (FT on navigation loss)",
            no_el_campaign.run(&mut NoEl),
        ),
        ("unmonitored degraded EL", campaign.run(&mut degraded)),
        (
            "ground-truth EL (upper bound)",
            campaign.run(&mut PerfectEl { clearance_m }),
        ),
    ];

    println!(
        "{:<32} {:>6} {:>6} {:>6} {:>6}  {:>22}  {:>8} {:>8}",
        "policy", "done", "RTB", "EL-land", "FT", "severity 1/2/3/4/5", "fatal%", "cat%"
    );
    for (name, r) in &reports {
        println!(
            "{:<32} {:>6} {:>6} {:>7} {:>6}  {:>3}/{:>3}/{:>3}/{:>3}/{:>3}     {:>7.2}% {:>7.2}%",
            name,
            r.completed,
            r.returned_to_base,
            r.landed_el,
            r.terminated,
            r.severity_histogram[0],
            r.severity_histogram[1],
            r.severity_histogram[2],
            r.severity_histogram[3],
            r.severity_histogram[4],
            100.0 * r.fatal_fraction(),
            100.0 * r.catastrophic_fraction(),
        );
    }

    println!("\nmaneuver engagement fractions (H / RB / EL / FT):");
    for (name, r) in &reports {
        let f = r.maneuver_fractions();
        println!(
            "{:<32} {:.2} / {:.2} / {:.2} / {:.2}",
            name, f[0], f[1], f[2], f[3]
        );
    }

    let no_el = &reports[0].1;
    let perfect = &reports[2].1;
    println!(
        "\nEL converts {} flight terminations into {} confirmed landings and cuts the catastrophic rate from {:.2}% to {:.2}%.",
        no_el.terminated,
        perfect.landed_el,
        100.0 * no_el.catastrophic_fraction(),
        100.0 * perfect.catastrophic_fraction(),
    );
}

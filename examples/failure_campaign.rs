//! The Figure 1 experiment: Monte-Carlo failure-injection campaigns over
//! the safety-switch architecture, comparing emergency-landing policies.
//!
//! The campaign itself is no longer hard-coded: the mission template,
//! wind, rates and fleet size all come from the committed
//! `scenarios/nominal.json`, loaded through the same scenario subsystem
//! users drive (`cargo run --example scenario_campaign`). This example
//! then runs the *same* declarative campaign under three EL policies —
//! the with/without-EL cross-validation of Table II.
//!
//! ```text
//! cargo run --release --example failure_campaign
//! ```

use certel::prelude::*;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/nominal.json");
    let base = match Scenario::load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mission = base.mission_config().expect("committed scenario is valid");

    // The EL clearance is derived from the drift model so confirmed zones
    // absorb the canopy drift at this wind (Table III) — a clearance sized
    // for calm air under real wind lands "perfect" selections on roads.
    let drift = certel::el_core::DriftModel {
        deploy_altitude_m: mission.el_deploy_altitude_m,
        ..certel::el_core::DriftModel::medi_delivery()
    };
    let clearance_m = drift.required_clearance_m(
        mission.wind.mean_speed_mps,
        certel::el_core::IntegrityLevel::Low,
    );
    println!(
        "scenario `{}`: {} missions; EL zone clearance from drift model: {:.1} m (deploy {:.0} m, wind {:.1} m/s)",
        base.name, base.missions, clearance_m, drift.deploy_altitude_m, mission.wind.mean_speed_mps
    );
    println!(
        "running {} missions x 3 EL policies under the scenario's failure rates...\n",
        base.missions
    );

    // Three arms of the same declarative campaign: only the EL policy
    // (and, for the baseline, the EL-installed toggle) differ, so every
    // arm replays the identical fault streams.
    let mut no_el = base.clone();
    no_el.el = Some(ElPolicy::NoEl);
    no_el.mission.el_installed = Some(false);
    let mut degraded = base.clone();
    degraded.el = Some(ElPolicy::Degraded {
        blunder_prob: 0.3,
        abort_prob: 0.05,
        clearance_m,
    });
    let mut perfect = base.clone();
    perfect.el = Some(ElPolicy::Perfect { clearance_m });

    let arms = [
        ("no EL (FT on navigation loss)", no_el),
        ("unmonitored degraded EL", degraded),
        ("ground-truth EL (upper bound)", perfect),
    ];
    let reports: Vec<(&str, CampaignReport)> = arms
        .iter()
        .map(|(name, scenario)| {
            let outcome = scenario.run().unwrap_or_else(|e| {
                eprintln!("error running arm `{name}`: {e}");
                std::process::exit(1);
            });
            (*name, outcome.report)
        })
        .collect();

    println!(
        "{:<32} {:>6} {:>6} {:>6} {:>6}  {:>22}  {:>8} {:>8}",
        "policy", "done", "RTB", "EL-land", "FT", "severity 1/2/3/4/5", "fatal%", "cat%"
    );
    for (name, r) in &reports {
        println!(
            "{:<32} {:>6} {:>6} {:>7} {:>6}  {:>3}/{:>3}/{:>3}/{:>3}/{:>3}     {:>7.2}% {:>7.2}%",
            name,
            r.completed,
            r.returned_to_base,
            r.landed_el,
            r.terminated,
            r.severity_histogram[0],
            r.severity_histogram[1],
            r.severity_histogram[2],
            r.severity_histogram[3],
            r.severity_histogram[4],
            100.0 * r.fatal_fraction(),
            100.0 * r.catastrophic_fraction(),
        );
    }

    println!("\nmaneuver engagement fractions (H / RB / EL / FT):");
    for (name, r) in &reports {
        let f = r.maneuver_fractions();
        println!(
            "{:<32} {:.2} / {:.2} / {:.2} / {:.2}",
            name, f[0], f[1], f[2], f[3]
        );
    }

    // Statistical power: identical fault streams in every arm, so one
    // arm's power section speaks for all three.
    if let Some(power) = &reports[2].1.power {
        println!(
            "\nstatistical power: {}",
            if power.underpowered {
                "UNDERPOWERED — at least one hazard class drew too few events"
            } else {
                "every active hazard class clears the event floor"
            }
        );
    }

    let no_el = &reports[0].1;
    let perfect = &reports[2].1;
    println!(
        "\nEL converts {} flight terminations into {} confirmed landings and moves the catastrophic rate from {:.2}% to {:.2}%.",
        no_el.terminated,
        perfect.landed_el,
        100.0 * no_el.catastrophic_fraction(),
        100.0 * perfect.catastrophic_fraction(),
    );
}

//! Quickstart: train a small core function, run the certified landing
//! pipeline once, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A synthetic urban world (roads, buildings, parks, cars, people) and
    // a rendered dataset: nominal-condition train/test splits plus a
    // sunset out-of-distribution split.
    println!("generating synthetic urban dataset...");
    let dataset = Dataset::generate(&DatasetConfig::small(1));

    // Train the MSDnet-style segmenter (the core function of Figure 2).
    // The smoke configuration is quick; see `monitored_landing` for the
    // benchmark-scale training.
    println!("training MSDnet core function (smoke config)...");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = MsdNet::new(&MsdNetConfig::default_uavid(), &mut rng);
    let mut train_cfg = TrainConfig::smoke();
    train_cfg.steps = 2500;
    train_cfg.tile = 32;
    let report = Trainer::new(train_cfg).train(&mut net, &dataset);
    println!(
        "  loss {:.3} -> {:.3} over {} steps",
        report.initial_loss,
        report.final_loss,
        report.losses.len()
    );

    // An emergency frame: the UAV loses navigation above an unseen part
    // of town and must pick a landing zone.
    let scene = Scene::generate(&SceneParams::small(), 4242);
    let image = scene.render(&Conditions::nominal(), 7);

    // The Figure 2 safety architecture: core function proposes zones far
    // from predicted busy roads, the Bayesian monitor (Monte-Carlo
    // dropout, Eq. 2 with tau = 0.125) verifies each candidate crop, the
    // decision module lands, retries, or aborts.
    let mut config = PipelineConfig::benchmark();
    config.zone = ZoneParams::small();
    config.monitor.samples = 10;
    let mut pipeline = ElPipeline::try_new(net, config).expect("valid config");
    let outcome = pipeline.run(&image, 42);

    println!("pipeline trials:");
    for (i, t) in outcome.trials.iter().enumerate() {
        println!(
            "  trial {}: zone at {} (clearance {:.1} px) -> {:?} ({:.1}% warnings)",
            i + 1,
            t.candidate.center,
            t.candidate.clearance_px,
            t.verdict,
            100.0 * t.warning_fraction
        );
    }
    match &outcome.decision {
        FinalDecision::Land(zone) => {
            println!("DECISION: land at {}", zone.center);
            // Grade the decision against ground truth (experiment only —
            // the airborne system never sees this).
            let assessment = assess_zone(&scene.labels, zone.rect);
            println!(
                "  ground truth: fatal={} high-risk={} clearance={:.1}px landable={:.0}%",
                assessment.fatal,
                assessment.contains_high_risk,
                assessment.center_clearance_px,
                100.0 * assessment.landable_fraction
            );
        }
        FinalDecision::Abort(reason) => {
            println!("DECISION: abort ({reason:?}) -> flight termination with parachute");
        }
    }
}

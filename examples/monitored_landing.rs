//! The Figure 2 / Figure 4 experiment at benchmark scale: train the core
//! function, quantify its in-distribution vs out-of-distribution
//! behaviour, show what the Bayesian monitor catches, and run the full
//! pipeline end to end on both regimes.
//!
//! Run in release mode (training and Monte-Carlo dropout are compute
//! heavy):
//!
//! ```text
//! cargo run --release --example monitored_landing
//! ```

use certel::prelude::*;
use el_seg::train::evaluate_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("generating benchmark dataset (nominal + sunset-OOD splits)...");
    let dataset = Dataset::generate(&DatasetConfig::benchmark(1));

    println!("training MSDnet (benchmark config)...");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = MsdNet::new(&MsdNetConfig::default_uavid(), &mut rng);
    let report = Trainer::new(TrainConfig::benchmark()).train(&mut net, &dataset);
    println!(
        "  loss {:.3} -> {:.3}",
        report.initial_loss, report.final_loss
    );

    // --- Figure 4a/4b, quantified: core model quality per split. ---
    println!("\n== Core function (deterministic MSDnet) ==");
    for split in [Split::Test, Split::Ood] {
        let cm = evaluate_split(&mut net, &dataset, split);
        println!(
            "  {split:?}: pixel-acc {:.3}  mean-IoU {:.3}  busy-road recall {:.3}",
            cm.pixel_accuracy(),
            cm.mean_iou(),
            cm.busy_road_recall().unwrap_or(f64::NAN),
        );
    }

    // --- The monitor: what Eq. 2 catches of the core model's misses. ---
    println!("\n== Bayesian monitor (MC-dropout, 10 samples, tau=0.125, mu+3sigma) ==");
    let rule = MonitorRule::paper();
    for split in [Split::Test, Split::Ood] {
        let mut quality = MonitorQuality::default();
        let mut sigma = 0.0;
        let mut n = 0;
        for sample in dataset.split(split) {
            let core = segment(&mut net, &sample.image);
            let core_safe = core.labels.map(|c| !c.is_busy_road());
            let stats = bayesian_segment(&net, &sample.image, 10, 42);
            sigma += stats.mean_uncertainty();
            n += 1;
            quality.accumulate(&sample.labels, &core_safe, &rule.warning_map(&stats));
        }
        println!(
            "  {split:?}: miss-coverage {:.3}  false-alarm {:.3}  road-warning recall {:.3}  mean-sigma {:.4}",
            quality.miss_coverage().unwrap_or(f64::NAN),
            quality.false_alarm_rate().unwrap_or(f64::NAN),
            quality.road_warning_recall().unwrap_or(f64::NAN),
            sigma / n as f64
        );
    }

    // --- Figure 2 end to end: monitored vs unmonitored pipeline. ---
    println!("\n== Figure 2 pipeline, end to end ==");
    let camera = Camera::new(120.0, 60.0, 256);
    let drift = DriftModel::medi_delivery();
    let clearance = drift.required_clearance_px(3.0, IntegrityLevel::Medium, &camera);
    println!(
        "  drift buffer at 3 m/s wind, Medium integrity: {:.1} m = {:.1} px",
        drift.required_clearance_m(3.0, IntegrityLevel::Medium),
        clearance
    );

    for (label, monitored) in [("monitored", true), ("unmonitored baseline", false)] {
        for split in [Split::Test, Split::Ood] {
            let mut config = PipelineConfig::paper();
            config.monitor.max_warning_fraction = 0.02;
            config.monitored = monitored;
            let mut pipeline =
                ElPipeline::try_new(MsdNet::from_json(&netify(&net)).expect("roundtrip"), config)
                    .expect("valid config");
            let mut landed = 0;
            let mut aborted = 0;
            let mut fatal = 0;
            let mut total = 0;
            for (i, sample) in dataset.split(split).enumerate() {
                let outcome = pipeline.run(&sample.image, 1000 + i as u64);
                total += 1;
                match outcome.decision {
                    FinalDecision::Land(zone) => {
                        landed += 1;
                        if assess_zone(&sample.labels, zone.rect).fatal {
                            fatal += 1;
                        }
                    }
                    FinalDecision::Abort(_) => aborted += 1,
                }
            }
            println!(
                "  {label:<22} {split:?}: {landed} landed / {aborted} aborted of {total}; fatal zones: {fatal}"
            );
        }
    }
}

/// Clones a network through its JSON form (keeps the example independent
/// of internal Clone semantics).
fn netify(net: &MsdNet) -> String {
    net.to_json()
}

//! Multi-stream load generation against the resident `el-serve` service:
//! train a small model once, pre-render N synthetic streams, drive them
//! through one [`ElService`] (shared weights, per-stream sessions,
//! cross-stream batch coalescing), and report throughput plus per-stream
//! decision/audit fingerprints.
//!
//! ```text
//! cargo run --release --example serve_load -- --streams 8 --frames 12 --threads 2
//! ```
//!
//! Flags:
//!
//! - `--streams <n>` — concurrent streams (default 8).
//! - `--frames <n>` — frames per stream (default 12).
//! - `--seed <u64>` — base seed for the stream seed chains (default 42).
//! - `--threads <n>` — worker threads for the timed run (default: all
//!   cores).
//! - `--out <path>` — write the final metrics snapshot as JSON (the
//!   `serve` group carries tick latency, batch sizes, queue depths).
//! - `--check-determinism` — re-run the whole load at 1, 2 and
//!   `--threads` workers and exit nonzero unless every stream's decision
//!   and audit fingerprints are identical across all three (the CI
//!   determinism gate).
//! - `--check-speedup <x>` — exit nonzero unless the `--threads` run's
//!   throughput is at least `x` times the single-thread run's (only
//!   meaningful on a multi-core host; CI runs it, laptops may skip).
//!
//! Every run prints per-stream fingerprints, so two invocations with the
//! same seed are comparable across machines and thread counts.

use std::process::ExitCode;
use std::sync::Arc as StdArc;

use certel::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Args {
    streams: usize,
    frames: usize,
    seed: u64,
    threads: usize,
    out: Option<String>,
    check_determinism: bool,
    check_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        streams: 8,
        frames: 12,
        seed: 42,
        threads: default_threads,
        out: None,
        check_determinism: false,
        check_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse()
                .map_err(|e| format!("{name} `{v}` is invalid: {e}"))
        }
        match flag.as_str() {
            "--streams" => args.streams = parsed("--streams", value("--streams")?)?,
            "--frames" => args.frames = parsed("--frames", value("--frames")?)?,
            "--seed" => args.seed = parsed("--seed", value("--seed")?)?,
            "--threads" => args.threads = parsed("--threads", value("--threads")?)?,
            "--out" => args.out = Some(value("--out")?),
            "--check-determinism" => args.check_determinism = true,
            "--check-speedup" => {
                args.check_speedup = Some(parsed("--check-speedup", value("--check-speedup")?)?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.streams == 0 || args.frames == 0 || args.threads == 0 {
        return Err("--streams, --frames and --threads must be positive".into());
    }
    Ok(args)
}

/// Trains the small serve model (deterministic: fixed seeds throughout).
fn train_net() -> MsdNet {
    let mut config = DatasetConfig::small(3);
    config.n_train = 6;
    config.n_test = 1;
    config.n_ood = 1;
    let dataset = Dataset::generate(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net_cfg = MsdNetConfig {
        branch_channels: 8,
        head_hidden: 16,
        dilations: vec![1, 2],
        ..MsdNetConfig::tiny()
    };
    let mut net = MsdNet::new(&net_cfg, &mut rng);
    let train = TrainConfig {
        steps: 600,
        tile: 32,
        lr: 3e-3,
        class_weighted: true,
        augment: false,
        seed: 7,
    };
    Trainer::new(train).train(&mut net, &dataset);
    net
}

/// The audited serve configuration the load runs under: deterministic
/// audit clock and unlimited admission, so every run of the same seed
/// processes the same frames regardless of host speed or thread count.
fn serve_config() -> ServeConfig {
    let mut pipeline = PipelineConfig::fast_test().with_audit(AuditConfig::fast_test());
    pipeline.monitor.max_warning_fraction = 0.25;
    ServeConfig {
        pipeline,
        admission: AdmissionConfig::unlimited(),
        drift: Some(DriftConfig::medi_delivery()),
        audit_clock: TickClock::Zero,
        max_inbox: 4,
    }
}

struct RunResult {
    threads: usize,
    wall_s: f64,
    throughput_fps: f64,
    /// `(id, decision_fp, audit_fp)` per stream, in stream order.
    fingerprints: Vec<(u64, String, String)>,
    summaries: Vec<SessionSummary>,
}

/// One complete load run at a fixed worker-thread count.
fn run_once(net: StdArc<MsdNet>, args: &Args, threads: usize) -> Result<RunResult, String> {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let mut service =
        ElService::try_new(net, serve_config()).map_err(|e| format!("serve config: {e}"))?;
    let load = LoadConfig::smoke(args.streams, args.frames, args.seed);
    let streams = generate_streams(&load);
    let report = run_load(&mut service, streams);
    std::env::remove_var("RAYON_NUM_THREADS");
    let fingerprints = report
        .summaries
        .iter()
        .map(|s| (s.id, s.decision_fp.clone(), s.audit_fp.clone()))
        .collect();
    Ok(RunResult {
        threads,
        wall_s: report.wall_s,
        throughput_fps: report.throughput_fps(),
        fingerprints,
        summaries: report.summaries,
    })
}

fn print_run(run: &RunResult) {
    println!(
        "run @ {} thread(s): {:.2} s wall, {:.1} frames/s",
        run.threads, run.wall_s, run.throughput_fps
    );
    for s in &run.summaries {
        println!(
            "  stream {}: {} frames ({} land / {} abort / {} refused)  decision_fp={}  audit_fp={}",
            s.id, s.frames, s.landings, s.aborts, s.refusals, s.decision_fp, s.audit_fp
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve_load: {} streams x {} frames, seed {}, {} thread(s)",
        args.streams, args.frames, args.seed, args.threads
    );

    println!("training serve model (fixed seeds)...");
    let net = StdArc::new(train_net());
    println!("pre-rendering streams and running load...");

    el_metrics::set_enabled(true);
    el_metrics::registry().reset();
    let main_run = match run_once(net.clone(), &args, args.threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = el_metrics::registry().snapshot();
    el_metrics::set_enabled(false);
    print_run(&main_run);

    if let Some(path) = &args.out {
        let json = match serde_json::to_string(&snapshot) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("serve_load: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot written to {path}");
    }

    // Baseline for the determinism/speedup gates: the same load at one
    // worker, then (for determinism) at two.
    let need_baseline = args.check_determinism || args.check_speedup.is_some();
    if !need_baseline {
        return ExitCode::SUCCESS;
    }
    let single = match run_once(net.clone(), &args, 1) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_run(&single);

    if args.check_determinism {
        let two = match run_once(net.clone(), &args, 2) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_run(&two);
        for other in [&single, &two] {
            if other.fingerprints != main_run.fingerprints {
                eprintln!(
                    "serve_load: thread-count determinism violation: \
                     {} thread(s) vs {} thread(s) disagree on per-stream fingerprints",
                    main_run.threads, other.threads
                );
                return ExitCode::FAILURE;
            }
        }
        println!(
            "determinism: per-stream fingerprints identical at 1, 2 and {} thread(s)",
            main_run.threads
        );
    }

    if let Some(min_speedup) = args.check_speedup {
        let speedup = single.wall_s / main_run.wall_s.max(1e-9);
        println!(
            "speedup: {:.2}x at {} thread(s) over 1 thread (required {min_speedup:.2}x)",
            speedup, main_run.threads
        );
        if speedup < min_speedup {
            eprintln!(
                "serve_load: speedup {speedup:.2}x at {} thread(s) is below the \
                 required {min_speedup:.2}x",
                main_run.threads
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

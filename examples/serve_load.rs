//! Multi-stream load generation against the resident `el-serve` service:
//! train a small model once, pre-render N synthetic streams, drive them
//! through one [`ElService`] (shared weights, per-stream sessions,
//! cross-stream batch coalescing), and report throughput plus per-stream
//! decision/audit fingerprints.
//!
//! ```text
//! cargo run --release --example serve_load -- --streams 8 --frames 12 --threads 2
//! ```
//!
//! Flags:
//!
//! - `--streams <n>` — concurrent streams (default 8).
//! - `--frames <n>` — frames per stream (default 12).
//! - `--seed <u64>` — base seed for the stream seed chains (default 42).
//! - `--threads <n>` — worker threads for the timed run (default: all
//!   cores).
//! - `--out <path>` — write the final metrics snapshot as JSON (the
//!   `serve` group carries tick latency, batch sizes, queue depths; the
//!   `riskmap` group, ingestion and screening).
//! - `--riskmap` — run the fleet ground-risk map: all streams survey one
//!   shared terrain ([`TerrainMode::SharedFleet`]), every audit region
//!   feeds the map, and candidates are screened against it before
//!   verification.
//! - `--out-riskmap <path>` — write the final risk-map snapshot as JSON
//!   (hot blobs, counters, the canonical map fingerprint). Requires
//!   `--riskmap`.
//! - `--check-determinism` — re-run the whole load at 1, 2 and
//!   `--threads` workers and exit nonzero unless every stream's decision
//!   and audit fingerprints — and, with `--riskmap`, the map fingerprint
//!   — are identical across all three (the CI determinism gate).
//! - `--check-risk-advisory` — run the load twice on the shared-fleet
//!   terrain, once with the risk map accumulating but never screening
//!   ([`RiskSettings::advisory`]) and once with no map at all, and exit
//!   nonzero unless every stream's fingerprints are byte-identical (the
//!   veto-before-verify bit-identity gate: an advisory map must change
//!   nothing).
//! - `--check-speedup <x>` — exit nonzero unless the `--threads` run's
//!   throughput is at least `x` times the single-thread run's (only
//!   meaningful on a multi-core host; CI runs it, laptops may skip).
//! - `--drift <on|off>` — enable the MEDI DELIVERY drift tracker
//!   (default `on`). Under that drift model the tightened clearance
//!   rejects every proposal at the smoke seeds before any crop is cut,
//!   so the bench-trend job passes `off` to keep the coalesced-batch
//!   median it gates on non-vacuous.
//! - `--bench-out <path>` — write the run's tick-latency/batch-size
//!   medians as a JSON bench record (the `BENCH_serve.json` format).
//! - `--check-bench <path>` — compare this run against a committed bench
//!   record and exit nonzero on a >25% median tick-latency regression
//!   (with a 50 µs absolute-noise floor) or a >25% drop in the median
//!   coalesced batch size.
//!
//! Every run prints per-stream fingerprints, so two invocations with the
//! same seed are comparable across machines and thread counts.

use std::process::ExitCode;
use std::sync::Arc as StdArc;

use certel::prelude::*;
use el_serve::median_u64;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

struct Args {
    streams: usize,
    frames: usize,
    seed: u64,
    threads: usize,
    out: Option<String>,
    riskmap: bool,
    out_riskmap: Option<String>,
    check_determinism: bool,
    check_risk_advisory: bool,
    check_speedup: Option<f64>,
    bench_out: Option<String>,
    check_bench: Option<String>,
    drift: bool,
}

fn parse_args() -> Result<Args, String> {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        streams: 8,
        frames: 12,
        seed: 42,
        threads: default_threads,
        out: None,
        riskmap: false,
        out_riskmap: None,
        check_determinism: false,
        check_risk_advisory: false,
        check_speedup: None,
        bench_out: None,
        check_bench: None,
        drift: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse()
                .map_err(|e| format!("{name} `{v}` is invalid: {e}"))
        }
        match flag.as_str() {
            "--streams" => args.streams = parsed("--streams", value("--streams")?)?,
            "--frames" => args.frames = parsed("--frames", value("--frames")?)?,
            "--seed" => args.seed = parsed("--seed", value("--seed")?)?,
            "--threads" => args.threads = parsed("--threads", value("--threads")?)?,
            "--out" => args.out = Some(value("--out")?),
            "--riskmap" => args.riskmap = true,
            "--out-riskmap" => args.out_riskmap = Some(value("--out-riskmap")?),
            "--check-determinism" => args.check_determinism = true,
            "--check-risk-advisory" => args.check_risk_advisory = true,
            "--check-speedup" => {
                args.check_speedup = Some(parsed("--check-speedup", value("--check-speedup")?)?)
            }
            "--bench-out" => args.bench_out = Some(value("--bench-out")?),
            "--check-bench" => args.check_bench = Some(value("--check-bench")?),
            "--drift" => {
                args.drift = match value("--drift")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--drift must be `on` or `off`, got `{other}`")),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.streams == 0 || args.frames == 0 || args.threads == 0 {
        return Err("--streams, --frames and --threads must be positive".into());
    }
    if args.out_riskmap.is_some() && !args.riskmap {
        return Err("--out-riskmap requires --riskmap".into());
    }
    Ok(args)
}

/// Trains the small serve model (deterministic: fixed seeds throughout).
fn train_net() -> MsdNet {
    let mut config = DatasetConfig::small(3);
    config.n_train = 6;
    config.n_test = 1;
    config.n_ood = 1;
    let dataset = Dataset::generate(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let net_cfg = MsdNetConfig {
        branch_channels: 8,
        head_hidden: 16,
        dilations: vec![1, 2],
        ..MsdNetConfig::tiny()
    };
    let mut net = MsdNet::new(&net_cfg, &mut rng);
    let train = TrainConfig {
        steps: 600,
        tile: 32,
        lr: 3e-3,
        class_weighted: true,
        augment: false,
        seed: 7,
    };
    Trainer::new(train).train(&mut net, &dataset);
    net
}

/// How a run relates to the fleet risk map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RiskMode {
    /// No map at all — the pre-riskmap service, byte for byte.
    Off,
    /// Map accumulating and screening (the real feature).
    On,
    /// Map accumulating but never screening ([`RiskSettings::advisory`]);
    /// must be bit-identical to `Off`.
    Advisory,
}

/// The audited serve configuration the load runs under: deterministic
/// audit clock and unlimited admission, so every run of the same seed
/// processes the same frames regardless of host speed or thread count.
fn serve_config(mode: RiskMode, drift: bool) -> ServeConfig {
    let mut pipeline = PipelineConfig::fast_test().with_audit(AuditConfig::fast_test());
    pipeline.monitor.max_warning_fraction = 0.25;
    ServeConfig {
        pipeline,
        admission: AdmissionConfig::unlimited(),
        drift: drift.then(DriftConfig::medi_delivery),
        audit_clock: TickClock::Zero,
        max_inbox: 4,
        riskmap: match mode {
            RiskMode::Off => None,
            RiskMode::On => Some(el_serve::RiskSettings::fast_test()),
            RiskMode::Advisory => Some(el_serve::RiskSettings::advisory()),
        },
        precision: el_serve::AuditPrecision::exact(),
    }
}

struct RunResult {
    threads: usize,
    wall_s: f64,
    throughput_fps: f64,
    ticks: usize,
    tick_ns: Vec<u64>,
    tick_crops: Vec<u64>,
    admitted: usize,
    vetoes: usize,
    deprioritized: usize,
    /// `(id, decision_fp, audit_fp)` per stream, in stream order.
    fingerprints: Vec<(u64, String, String)>,
    riskmap: Option<RiskMapSnapshot>,
    summaries: Vec<SessionSummary>,
}

/// One complete load run at a fixed worker-thread count.
fn run_once(
    net: StdArc<MsdNet>,
    args: &Args,
    threads: usize,
    mode: RiskMode,
    terrain: TerrainMode,
) -> Result<RunResult, String> {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let mut service = ElService::try_new(net, serve_config(mode, args.drift))
        .map_err(|e| format!("serve config: {e}"))?;
    let mut load = LoadConfig::smoke(args.streams, args.frames, args.seed);
    load.terrain = terrain;
    let streams = generate_streams(&load);
    let report = run_load(&mut service, streams);
    std::env::remove_var("RAYON_NUM_THREADS");
    let fingerprints = report
        .summaries
        .iter()
        .map(|s| (s.id, s.decision_fp.clone(), s.audit_fp.clone()))
        .collect();
    Ok(RunResult {
        threads,
        wall_s: report.wall_s,
        throughput_fps: report.throughput_fps(),
        ticks: report.ticks,
        admitted: report.totals.admitted,
        vetoes: report.totals.vetoes,
        deprioritized: report.totals.deprioritized,
        fingerprints,
        riskmap: service.riskmap_snapshot(),
        tick_ns: report.tick_ns,
        tick_crops: report.tick_crops,
        summaries: report.summaries,
    })
}

fn print_run(run: &RunResult) {
    println!(
        "run @ {} thread(s): {:.2} s wall, {:.1} frames/s, {} ticks",
        run.threads, run.wall_s, run.throughput_fps, run.ticks
    );
    for s in &run.summaries {
        println!(
            "  stream {}: {} frames ({} land / {} abort / {} refused)  decision_fp={}  audit_fp={}",
            s.id, s.frames, s.landings, s.aborts, s.refusals, s.decision_fp, s.audit_fp
        );
    }
    if let Some(map) = &run.riskmap {
        println!(
            "  riskmap: tick {} — {} regions in, {} rejected, {} hot cells, \
             {} blobs, {} vetoes / {} deprioritized  map_fp={}",
            map.tick,
            map.ingested,
            map.rejected,
            map.cells_hot,
            map.hot_regions.len(),
            run.vetoes,
            run.deprioritized,
            map.fingerprint
        );
    }
}

/// The committed serve bench record (`BENCH_serve.json`).
#[derive(Debug, Serialize, Deserialize)]
struct ServeBench {
    streams: usize,
    frames_per_stream: usize,
    threads: usize,
    ticks: usize,
    frames_processed: usize,
    tick_ns_median: u64,
    tick_ns_mean: u64,
    batch_crops_median: u64,
}

impl ServeBench {
    fn from_run(args: &Args, run: &RunResult) -> Self {
        let mean = if run.tick_ns.is_empty() {
            0
        } else {
            run.tick_ns.iter().sum::<u64>() / run.tick_ns.len() as u64
        };
        ServeBench {
            streams: args.streams,
            frames_per_stream: args.frames,
            threads: run.threads,
            ticks: run.ticks,
            frames_processed: run.admitted,
            tick_ns_median: median_u64(&run.tick_ns),
            tick_ns_mean: mean,
            batch_crops_median: median_u64(&run.tick_crops),
        }
    }

    /// Gate against a committed baseline. Latency fails on a >25%
    /// median regression that also exceeds a 50 µs absolute floor (sub-
    /// floor jitter on tiny ticks is noise, same contract as the
    /// pipeline bench gate); batching fails on a >25% drop in the
    /// median coalesced batch size.
    fn check_against(&self, baseline: &ServeBench) -> Result<(), String> {
        let (now, was) = (self.tick_ns_median, baseline.tick_ns_median);
        if was > 0 {
            let ratio = now as f64 / was as f64;
            if ratio > 1.25 && now > was + 50_000 {
                return Err(format!(
                    "median tick latency regressed {ratio:.2}x ({was} ns -> {now} ns)"
                ));
            }
        }
        let (now_b, was_b) = (self.batch_crops_median, baseline.batch_crops_median);
        if was_b > 0 && (now_b as f64) < was_b as f64 * 0.75 {
            return Err(format!(
                "median coalesced batch shrank from {was_b} to {now_b} crops \
                 (>25% coalescing regression)"
            ));
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if args.riskmap {
        RiskMode::On
    } else {
        RiskMode::Off
    };
    // The risk map is only meaningful when the fleet shares ground; the
    // advisory gate also compares on shared ground so the map has
    // something to accumulate while it proves it changed nothing.
    let terrain = if args.riskmap || args.check_risk_advisory {
        TerrainMode::SharedFleet
    } else {
        TerrainMode::PerStream
    };
    println!(
        "serve_load: {} streams x {} frames, seed {}, {} thread(s), riskmap {}",
        args.streams,
        args.frames,
        args.seed,
        args.threads,
        if args.riskmap { "on" } else { "off" }
    );

    println!("training serve model (fixed seeds)...");
    let net = StdArc::new(train_net());
    println!("pre-rendering streams and running load...");

    el_metrics::set_enabled(true);
    el_metrics::registry().reset();
    let main_run = match run_once(net.clone(), &args, args.threads, mode, terrain) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = el_metrics::registry().snapshot();
    el_metrics::set_enabled(false);
    print_run(&main_run);

    if let Some(path) = &args.out {
        let json = match serde_json::to_string(&snapshot) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("serve_load: cannot serialize metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot written to {path}");
    }

    if let Some(path) = &args.out_riskmap {
        let Some(map) = &main_run.riskmap else {
            eprintln!("serve_load: no risk-map snapshot to write");
            return ExitCode::FAILURE;
        };
        let json = match serde_json::to_string(map) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("serve_load: cannot serialize risk map: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("risk-map snapshot written to {path}");
    }

    if let Some(path) = &args.bench_out {
        let bench = ServeBench::from_run(&args, &main_run);
        let json = serde_json::to_string(&bench).expect("bench record serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("serve_load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench record written to {path}");
    }

    if let Some(path) = &args.check_bench {
        let baseline: ServeBench = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("serve_load: cannot read bench baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bench = ServeBench::from_run(&args, &main_run);
        println!(
            "bench: tick median {} ns (baseline {} ns), batch median {} crops (baseline {})",
            bench.tick_ns_median,
            baseline.tick_ns_median,
            bench.batch_crops_median,
            baseline.batch_crops_median
        );
        if let Err(e) = bench.check_against(&baseline) {
            eprintln!("serve_load: bench gate failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench gate passed");
    }

    if args.check_risk_advisory {
        // Property (b): a map that accumulates but never screens must
        // leave every decision, trial and seed byte-identical to no map.
        let advisory = match run_once(
            net.clone(),
            &args,
            args.threads,
            RiskMode::Advisory,
            TerrainMode::SharedFleet,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bare = match run_once(
            net.clone(),
            &args,
            args.threads,
            RiskMode::Off,
            TerrainMode::SharedFleet,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: {e}");
                return ExitCode::FAILURE;
            }
        };
        if advisory.vetoes != 0 || advisory.deprioritized != 0 {
            eprintln!(
                "serve_load: advisory risk map screened candidates ({} vetoes, {} deprioritized)",
                advisory.vetoes, advisory.deprioritized
            );
            return ExitCode::FAILURE;
        }
        if advisory.fingerprints != bare.fingerprints {
            eprintln!(
                "serve_load: advisory risk map changed decisions: per-stream \
                 fingerprints differ from the map-off run"
            );
            return ExitCode::FAILURE;
        }
        let accumulated = advisory.riskmap.as_ref().map(|m| m.ingested).unwrap_or(0);
        println!(
            "risk advisory gate: map accumulated {accumulated} regions and \
             changed nothing (fingerprints identical to map-off run)"
        );
    }

    // Baseline for the determinism/speedup gates: the same load at one
    // worker, then (for determinism) at two.
    let need_baseline = args.check_determinism || args.check_speedup.is_some();
    if !need_baseline {
        return ExitCode::SUCCESS;
    }
    let single = match run_once(net.clone(), &args, 1, mode, terrain) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_run(&single);

    if args.check_determinism {
        let two = match run_once(net.clone(), &args, 2, mode, terrain) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_run(&two);
        for other in [&single, &two] {
            if other.fingerprints != main_run.fingerprints {
                eprintln!(
                    "serve_load: thread-count determinism violation: \
                     {} thread(s) vs {} thread(s) disagree on per-stream fingerprints",
                    main_run.threads, other.threads
                );
                return ExitCode::FAILURE;
            }
            let map_fp = |r: &RunResult| r.riskmap.as_ref().map(|m| m.fingerprint.clone());
            if map_fp(other) != map_fp(&main_run) {
                eprintln!(
                    "serve_load: thread-count determinism violation: \
                     {} thread(s) vs {} thread(s) disagree on the risk-map fingerprint",
                    main_run.threads, other.threads
                );
                return ExitCode::FAILURE;
            }
        }
        println!(
            "determinism: per-stream{} fingerprints identical at 1, 2 and {} thread(s)",
            if args.riskmap { " and risk-map" } else { "" },
            main_run.threads
        );
    }

    if let Some(min_speedup) = args.check_speedup {
        let speedup = single.wall_s / main_run.wall_s.max(1e-9);
        println!(
            "speedup: {:.2}x at {} thread(s) over 1 thread (required {min_speedup:.2}x)",
            speedup, main_run.threads
        );
        if speedup < min_speedup {
            eprintln!(
                "serve_load: speedup {speedup:.2}x at {} thread(s) is below the \
                 required {min_speedup:.2}x",
                main_run.threads
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
